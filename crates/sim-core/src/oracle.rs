//! The lockstep reference oracle: a deliberately naive executable spec.
//!
//! The optimized `vm` structures (cached resident counters, lazily
//! deleted free-list entries, packed residency bitmaps) are checked in
//! checked mode against *themselves* by the invariant probes — but a
//! shared misunderstanding baked into both the structure and its probe
//! would pass. This module closes that loop with a second, independent
//! implementation: the simplest possible model of the paper's
//! bookkeeping — per-process residency **sets**, the global clock hand,
//! and the Eq. 1 upper-limit arithmetic — fed the exact event stream the
//! PR 4 recorders already emit, and diffed against the live state at
//! configurable intervals.
//!
//! Naivety is the point. [`Oracle`] holds `BTreeSet`s and recomputes
//! everything from scratch; it shares no code with `vm`, so a bug has to
//! be made twice, independently, to slip through. It deliberately stays
//! around two hundred lines.
//!
//! The residency model, in terms of [`EventKind`]:
//!
//! * **map** (page becomes resident): `ZeroFill`, `HardFault`,
//!   `RescueDaemon`, `RescueRelease`, `PrefetchStarted`,
//!   `PrefetchRescued`. Set semantics absorb the rescue paths that emit
//!   both a rescue event and a prefetch event for the same page.
//! * **unmap** (frame goes back to the free list): `FreedByDaemon`,
//!   `FreedByRelease`.
//! * everything else (`PrefetchValidated`, `SoftFaultDaemon`,
//!   `ReleaseCancelled`, skip/filter events, …) changes validity or
//!   queue state but never the mapping, so the oracle ignores it.
//! * process exit unmaps everything without events — the VM calls
//!   [`Oracle::exit`] explicitly.
//!
//! Free frames follow by conservation: `total − Σ |resident set|`.

use std::collections::{BTreeMap, BTreeSet};

use crate::obs::EventKind;

/// Naive Eq. 1: the paper's upper limit on a process's resident set,
/// written as the obvious if/else arithmetic (the executable spec the
/// optimized `vm::shared_page::upper_limit` is diffed against).
// The spelled-out branch *is* the spec; `saturating_sub` would restate
// the implementation this function exists to cross-check.
#[allow(clippy::implicit_saturating_sub)]
pub fn naive_limit(maxrss: u64, current_size: u64, tot_freemem: u64, min_freemem: u64) -> u64 {
    let headroom = if tot_freemem > min_freemem {
        tot_freemem - min_freemem
    } else {
        0
    };
    let candidate = current_size + headroom;
    if candidate < maxrss {
        candidate
    } else {
        maxrss
    }
}

/// The lockstep reference model (see module docs).
#[derive(Clone, Debug)]
pub struct Oracle {
    total_frames: u64,
    resident: BTreeMap<u32, BTreeSet<u64>>,
    hand: u64,
    interval: u64,
    ticks: u64,
}

impl Oracle {
    /// A fresh oracle for a machine with `total_frames` physical frames,
    /// diffed at every opportunity (interval 1).
    pub fn new(total_frames: u64) -> Self {
        Oracle {
            total_frames,
            resident: BTreeMap::new(),
            hand: 0,
            interval: 1,
            ticks: 0,
        }
    }

    /// Sets the diff interval: the oracle reports [`Oracle::due`] on
    /// every `interval`-th tick. An interval of 0 is treated as 1.
    #[must_use]
    pub fn with_interval(mut self, interval: u64) -> Self {
        self.interval = interval.max(1);
        self
    }

    /// The diff interval configured by `HOGTAME_CHECK_INTERVAL` (default
    /// 1 — diff at every sweep; larger values trade coverage for speed).
    pub fn env_interval() -> u64 {
        std::env::var("HOGTAME_CHECK_INTERVAL")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map_or(1, |n| n.max(1))
    }

    /// Ticks the diff clock; true when a lockstep diff is owed now.
    pub fn due(&mut self) -> bool {
        self.ticks += 1;
        self.ticks.is_multiple_of(self.interval)
    }

    /// Applies one page-attributed event to the residency model.
    pub fn apply_page(&mut self, pid: u32, vpn: u64, kind: &EventKind) {
        match kind {
            EventKind::ZeroFill
            | EventKind::HardFault
            | EventKind::RescueDaemon
            | EventKind::RescueRelease
            | EventKind::PrefetchStarted
            | EventKind::PrefetchRescued => {
                self.resident.entry(pid).or_default().insert(vpn);
            }
            EventKind::FreedByDaemon | EventKind::FreedByRelease => {
                if let Some(set) = self.resident.get_mut(&pid) {
                    set.remove(&vpn);
                }
            }
            _ => {}
        }
    }

    /// Applies one non-page event: the paging daemon's scan advances the
    /// clock hand once per scanned frame, modulo the frame count.
    pub fn apply(&mut self, kind: &EventKind) {
        if let EventKind::PagingdScan { scanned, .. } = kind {
            if self.total_frames > 0 {
                self.hand = (self.hand + scanned) % self.total_frames;
            }
        }
    }

    /// A process exited: all of its pages unmap at once (the VM emits no
    /// per-page events on exit, so the teardown is explicit).
    pub fn exit(&mut self, pid: u32) {
        self.resident.remove(&pid);
    }

    /// Resident pages the model believes `pid` has.
    pub fn resident_count(&self, pid: u32) -> u64 {
        self.resident.get(&pid).map_or(0, |s| s.len() as u64)
    }

    /// Total mapped pages across all processes.
    pub fn mapped_total(&self) -> u64 {
        self.resident.values().map(|s| s.len() as u64).sum()
    }

    /// Free frames by conservation: `total − mapped`.
    pub fn free_frames(&self) -> u64 {
        self.total_frames.saturating_sub(self.mapped_total())
    }

    /// Where the model believes the clock hand points.
    pub fn hand(&self) -> u64 {
        self.hand
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_limit_matches_its_spec() {
        // Plenty of headroom: limited by maxrss.
        assert_eq!(naive_limit(100, 40, 80, 10), 100);
        // Tight memory: current + headroom.
        assert_eq!(naive_limit(100, 40, 20, 10), 50);
        // Below min_freemem: no headroom at all.
        assert_eq!(naive_limit(100, 40, 5, 10), 40);
        assert_eq!(naive_limit(100, 40, 10, 10), 40);
    }

    #[test]
    fn residency_set_tracks_map_and_unmap() {
        let mut o = Oracle::new(8);
        o.apply_page(0, 1, &EventKind::ZeroFill);
        o.apply_page(0, 2, &EventKind::HardFault);
        o.apply_page(1, 7, &EventKind::PrefetchStarted);
        // A rescue path emits both events for the same page; the set
        // absorbs the double insert.
        o.apply_page(1, 9, &EventKind::RescueDaemon);
        o.apply_page(1, 9, &EventKind::PrefetchRescued);
        assert_eq!(o.resident_count(0), 2);
        assert_eq!(o.resident_count(1), 2);
        assert_eq!(o.mapped_total(), 4);
        assert_eq!(o.free_frames(), 4);

        o.apply_page(0, 2, &EventKind::FreedByDaemon);
        o.apply_page(1, 9, &EventKind::FreedByRelease);
        assert_eq!(o.mapped_total(), 2);

        // Validity-only events never move the mapping.
        o.apply_page(0, 1, &EventKind::PrefetchValidated);
        o.apply_page(0, 1, &EventKind::SoftFaultDaemon);
        o.apply_page(0, 1, &EventKind::ReleaseCancelled);
        assert_eq!(o.resident_count(0), 1);

        o.exit(1);
        assert_eq!(o.mapped_total(), 1);
        assert_eq!(o.free_frames(), 7);
    }

    #[test]
    fn clock_hand_wraps_modulo_frames() {
        let mut o = Oracle::new(10);
        o.apply(&EventKind::PagingdScan {
            scanned: 4,
            free: 0,
        });
        assert_eq!(o.hand(), 4);
        o.apply(&EventKind::PagingdScan {
            scanned: 9,
            free: 0,
        });
        assert_eq!(o.hand(), 3);
        // Non-scan events leave the hand alone.
        o.apply(&EventKind::ReleaserBatch {
            handled: 1,
            queued: 0,
        });
        assert_eq!(o.hand(), 3);
    }

    #[test]
    fn diff_interval_paces_due() {
        let mut every = Oracle::new(1);
        assert!(every.due() && every.due() && every.due());
        let mut third = Oracle::new(1).with_interval(3);
        let hits: Vec<bool> = (0..6).map(|_| third.due()).collect();
        assert_eq!(hits, [false, false, true, false, false, true]);
        assert_eq!(Oracle::new(1).with_interval(0).interval, 1);
    }
}
