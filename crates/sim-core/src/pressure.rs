//! Graded memory-pressure levels shared by the VM monitor and the
//! runtime brownout ladder.
//!
//! The level itself lives in `sim-core` because both ends of the
//! overload-control loop speak it: `vm::pressure` derives it from
//! free-memory slope, steal rate and quota-shield hits, and
//! `runtime::brownout` keys its degradation ladder on it. The fault log
//! ([`crate::fault::FaultKind::BrownoutShift`]) and the typed event
//! stream ([`crate::obs::EventKind::PressureShift`]) both carry it, so
//! it has to sit below both crates in the dependency graph.

/// A graded memory-pressure signal, ordered from calm to collapse.
///
/// The ordering is load-bearing: the brownout ladder escalates
/// immediately to any higher level and unwinds one rung at a time, so
/// `PartialOrd`/`Ord` follow declaration order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default, Hash)]
pub enum PressureLevel {
    /// Free memory comfortably above target; no daemon activity.
    #[default]
    Normal,
    /// Free memory below target or the paging daemon has started
    /// stealing — the fleet should stop hoarding (aggressive releases).
    Elevated,
    /// Free memory falling under active stealing; discretionary
    /// consumers (prefetches, hint bursts) must stand down.
    Critical,
    /// The machine is at the free-memory wall; only shedding load can
    /// keep the survivors' tails bounded.
    Emergency,
}

impl PressureLevel {
    /// All levels, calmest first.
    pub const ALL: [PressureLevel; 4] = [
        PressureLevel::Normal,
        PressureLevel::Elevated,
        PressureLevel::Critical,
        PressureLevel::Emergency,
    ];

    /// Stable lower-case name for logs, metrics and event args.
    pub fn name(self) -> &'static str {
        match self {
            PressureLevel::Normal => "normal",
            PressureLevel::Elevated => "elevated",
            PressureLevel::Critical => "critical",
            PressureLevel::Emergency => "emergency",
        }
    }

    /// Ladder rung index (0..4), used for time-at-level accounting.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The level one rung calmer (saturating at [`PressureLevel::Normal`]).
    pub fn step_down(self) -> PressureLevel {
        match self {
            PressureLevel::Normal | PressureLevel::Elevated => PressureLevel::Normal,
            PressureLevel::Critical => PressureLevel::Elevated,
            PressureLevel::Emergency => PressureLevel::Critical,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_severity() {
        assert!(PressureLevel::Normal < PressureLevel::Elevated);
        assert!(PressureLevel::Elevated < PressureLevel::Critical);
        assert!(PressureLevel::Critical < PressureLevel::Emergency);
    }

    #[test]
    fn step_down_is_one_rung_and_saturates() {
        assert_eq!(
            PressureLevel::Emergency.step_down(),
            PressureLevel::Critical
        );
        assert_eq!(PressureLevel::Critical.step_down(), PressureLevel::Elevated);
        assert_eq!(PressureLevel::Elevated.step_down(), PressureLevel::Normal);
        assert_eq!(PressureLevel::Normal.step_down(), PressureLevel::Normal);
    }

    #[test]
    fn indices_match_all() {
        for (i, l) in PressureLevel::ALL.iter().enumerate() {
            assert_eq!(l.index(), i);
        }
    }
}
