//! Small deterministic PRNGs.
//!
//! The simulator must be exactly reproducible from a seed across platforms,
//! so we implement two tiny, well-known generators rather than depending on
//! `rand`'s versioned algorithms:
//!
//! * [`SplitMix64`] — used for seeding and cheap hash-like mixing.
//! * [`Pcg32`] — the general-purpose stream generator (PCG-XSH-RR 64/32).

/// SplitMix64: a fast 64-bit generator, primarily used to derive seeds.
///
/// # Examples
///
/// ```
/// use sim_core::rng::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// PCG-XSH-RR 64/32: a small, statistically solid 32-bit output generator.
#[derive(Clone, Debug)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    /// Creates a generator from a seed and stream id.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut pcg = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        pcg.next_u32();
        pcg.state = pcg.state.wrapping_add(seed);
        pcg.next_u32();
        pcg
    }

    /// Creates a generator from a single seed (stream derived via SplitMix64).
    pub fn seeded(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = sm.next_u64();
        let stream = sm.next_u64();
        Pcg32::new(s, stream)
    }

    /// Returns the next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Returns the next 64-bit value (two 32-bit draws).
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses Lemire's unbiased multiply-shift rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's method: rejection keeps the distribution exactly uniform.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u32();
            let m = u64::from(x) * u64::from(bound);
            if (m as u32) >= threshold {
                return (m >> 32) as u32;
            }
        }
    }

    /// Returns a uniformly distributed `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0` or exceeds `u32::MAX`.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(
            bound <= u32::MAX as usize,
            "bound too large for Pcg32::index"
        );
        self.next_below(bound as u32) as usize
    }

    /// Returns a uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }
}

/// One concern of the seeded program generator (`compiler::gen`).
///
/// Mirrors [`crate::fault::FaultDomain`]: each concern draws from its own
/// salted stream, so a generator change that consumes more randomness for
/// one concern (say, an extra array-shape draw) never shifts the draws any
/// *other* concern sees. That keeps the seed → program mapping as stable
/// as possible across generator evolution, which is what makes committed
/// corpus seeds meaningful.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GenDomain {
    /// Program shape: nest count, depths, reference counts.
    Shape,
    /// Array declarations: rank, extents, element sizes.
    Arrays,
    /// Compile-time bounds: known vs unknown, estimates.
    Bounds,
    /// Reference structure: target arrays, read/write, aliasing, `seen`.
    Refs,
    /// Affine coefficients and constant offsets (strides).
    Strides,
    /// Indirection wiring: via arrays, content seeds.
    Indirection,
    /// Run-time truth: actual trips for unknown bounds, invocations.
    Runtime,
}

impl GenDomain {
    /// ASCII salt, like `FaultDomain`'s.
    fn salt(self) -> u64 {
        match self {
            GenDomain::Shape => 0x53_48_41_50,       // "SHAP"
            GenDomain::Arrays => 0x41_52_52_53,      // "ARRS"
            GenDomain::Bounds => 0x42_4e_44_53,      // "BNDS"
            GenDomain::Refs => 0x52_45_46_53,        // "REFS"
            GenDomain::Strides => 0x53_54_52_44,     // "STRD"
            GenDomain::Indirection => 0x49_4e_44_52, // "INDR"
            GenDomain::Runtime => 0x52_55_4e_54,     // "RUNT"
        }
    }

    /// Derives the deterministic RNG for one generator concern of one
    /// program `stream` (e.g. one stream per nest) under `seed`.
    pub fn rng(self, seed: u64, stream: u64) -> Pcg32 {
        let mut mix =
            SplitMix64::new(seed ^ self.salt() ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        Pcg32::new(mix.next_u64(), mix.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reproducible() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_differs_by_seed() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn pcg_reproducible() {
        let mut a = Pcg32::seeded(99);
        let mut b = Pcg32::seeded(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn next_below_in_range() {
        let mut r = Pcg32::seeded(5);
        for _ in 0..10_000 {
            assert!(r.next_below(7) < 7);
        }
    }

    #[test]
    fn next_below_roughly_uniform() {
        let mut r = Pcg32::seeded(42);
        let mut buckets = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            buckets[r.next_below(8) as usize] += 1;
        }
        let expected = n / 8;
        for &b in &buckets {
            // 10% tolerance is generous for 10k samples per bucket.
            assert!((b as i64 - expected as i64).unsigned_abs() < expected as u64 / 10);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Pcg32::seeded(17);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Pcg32::seeded(3);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle should move elements"
        );
    }

    #[test]
    #[should_panic]
    fn next_below_zero_panics() {
        Pcg32::seeded(0).next_below(0);
    }
}
