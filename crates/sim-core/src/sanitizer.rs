//! Checked mode: typed invariant violations and the mutation matrix.
//!
//! The simulation's correctness argument rests on precise bookkeeping —
//! Eq. 1 usage/limit accounting, the shared-page residency bitmap, Eq. 2
//! priority-ordered release queues, one-behind filter safety, frame
//! free-list conservation. A state-corruption bug that happens to
//! preserve the end-of-run counters would ship silently past golden pins
//! and paper-claim tests. *Checked mode* closes that hole: every
//! subsystem registers invariant probes at its state-mutation sites and
//! raises a typed [`InvariantViolation`] the moment the live state
//! disagrees with what the invariants (or the lockstep
//! [`crate::oracle::Oracle`]) say it must be.
//!
//! Checked mode is opt-in — `RunRequest::checked()`,
//! `Engine::with_checked()`, or `HOGTAME_CHECKED=1` — and costs a single
//! branch per probe site when off. A checked run is **bit-identical in
//! simulated outcome** to an unchecked run: probes only read state, and
//! the oracle consumes the same event stream PR 4 already records.
//!
//! Because a sanitizer that silently checks nothing is worse than none,
//! the probes themselves are tested: [`Mutation`] enumerates seeded,
//! deliberate state corruptions (flip a bitmap bit, leak a frame, reorder
//! a release queue, …), each proven — by `bench --bin sanitizer_matrix`
//! and `tests/checked_mode.rs` — to be caught by exactly the invariant
//! named in [`Mutation::expected_invariant`].

use std::fmt;

use crate::time::SimTime;

/// A detected violation of a simulator invariant.
///
/// Raised via [`InvariantViolation::raise`] (a typed panic payload) so
/// the engine's existing `catch_unwind` surfaces it with the flight
/// recorders dumped, and tests can downcast to assert on the exact
/// invariant that fired.
#[derive(Clone, Debug)]
pub struct InvariantViolation {
    /// Sim time at which the probe detected the violation.
    pub at: SimTime,
    /// The subsystem whose probe fired (`"vm"`, `"runtime"`, `"disk"`).
    pub subsystem: &'static str,
    /// Stable snake-case name of the violated invariant (for example
    /// `"frame_conservation"` or `"one_behind_filter"`).
    pub invariant: &'static str,
    /// Human-readable description of the disagreement.
    pub detail: String,
    /// The tail of the detecting subsystem's flight recorder, rendered
    /// as text (empty when recording was disabled).
    pub tail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant violation [{}/{}] at t={}ns: {}",
            self.subsystem,
            self.invariant,
            self.at.as_nanos(),
            self.detail
        )?;
        if !self.tail.is_empty() {
            write!(f, "\n-- flight recorder tail --\n{}", self.tail)?;
        }
        Ok(())
    }
}

impl InvariantViolation {
    /// Raises the violation as a typed panic payload.
    ///
    /// The engine's run loop catches unwinds, dumps every flight
    /// recorder, and resumes the unwind — so the payload survives for
    /// `downcast_ref::<InvariantViolation>()` in tests and in the
    /// executor's panic-message rendering.
    pub fn raise(self) -> ! {
        std::panic::panic_any(self)
    }
}

/// Parses a `HOGTAME_CHECKED`-style toggle value. Unset, empty, `0`,
/// `false`, `off` and `no` (case-insensitive) mean disabled; anything
/// else enables checked mode.
pub fn parse_checked(value: Option<&str>) -> bool {
    match value {
        None => false,
        Some(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v.is_empty() || v == "0" || v == "false" || v == "off" || v == "no")
        }
    }
}

/// Whether the `HOGTAME_CHECKED` environment variable enables checked
/// mode (see [`parse_checked`]).
pub fn env_checked() -> bool {
    parse_checked(std::env::var("HOGTAME_CHECKED").ok().as_deref())
}

/// Which subsystem a [`Mutation`] corrupts (and therefore which layer's
/// `apply_mutation` hook applies it).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MutationTarget {
    /// The VM subsystem (frame table, page tables, shared pages, clock).
    Vm,
    /// The run-time hint layer (one-behind filter, release buffers).
    Runtime,
    /// The striped swap device.
    Disk,
}

/// A seeded, deliberate state corruption used to prove the sanitizer
/// catches what it claims to catch.
///
/// Each variant breaks exactly one invariant; the self-test matrix
/// (`bench --bin sanitizer_matrix`) runs every mutation under checked
/// mode and asserts the raised [`InvariantViolation::invariant`] equals
/// [`Mutation::expected_invariant`] — and that the same run *without*
/// the mutation passes clean. Mutations only exist behind checked-mode
/// test plumbing; no production path constructs one.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mutation {
    /// Flip one shared-page residency bit out from under the page table.
    FlipBitmapBit,
    /// Overwrite the shared page's usage word with a bogus value.
    TamperUsageWord,
    /// Overwrite the shared page's limit word with a bogus value.
    TamperLimitWord,
    /// Corrupt the page table's cached resident-page counter (models a
    /// skipped Eq. 1 usage decrement).
    SkipUsageDecrement,
    /// Drop a frame from the free list without allocating it (the frame
    /// still claims to be free).
    LeakFrame,
    /// Push a frame that is still mapped onto the free list.
    DoubleFreeFrame,
    /// Warp the paging daemon's clock hand between activations.
    WarpClockHand,
    /// Move a buffered-release tag into the wrong priority bucket.
    ReorderReleaseQueue,
    /// Make the one-behind filter echo the just-used page instead of
    /// holding it back.
    FilterPassthrough,
    /// Enqueue a release for a page whose prefetch is still in flight.
    ReleaseInflightPrefetch,
    /// Complete one swap I/O twice (double statistics bump).
    DoubleCompleteIo,
    /// Retry a transient I/O failure past the configured budget.
    BustRetryBudget,
    /// Free a page without telling the event stream — the lockstep
    /// oracle's residency set diverges from the live page table.
    StealthFree,
}

impl Mutation {
    /// Every mutation, in a fixed order (the self-test matrix order).
    pub fn all() -> [Mutation; 13] {
        [
            Mutation::FlipBitmapBit,
            Mutation::TamperUsageWord,
            Mutation::TamperLimitWord,
            Mutation::SkipUsageDecrement,
            Mutation::LeakFrame,
            Mutation::DoubleFreeFrame,
            Mutation::WarpClockHand,
            Mutation::ReorderReleaseQueue,
            Mutation::FilterPassthrough,
            Mutation::ReleaseInflightPrefetch,
            Mutation::DoubleCompleteIo,
            Mutation::BustRetryBudget,
            Mutation::StealthFree,
        ]
    }

    /// Short stable snake-case label (matrix-table and log rendering).
    pub fn label(&self) -> &'static str {
        match self {
            Mutation::FlipBitmapBit => "flip_bitmap_bit",
            Mutation::TamperUsageWord => "tamper_usage_word",
            Mutation::TamperLimitWord => "tamper_limit_word",
            Mutation::SkipUsageDecrement => "skip_usage_decrement",
            Mutation::LeakFrame => "leak_frame",
            Mutation::DoubleFreeFrame => "double_free_frame",
            Mutation::WarpClockHand => "warp_clock_hand",
            Mutation::ReorderReleaseQueue => "reorder_release_queue",
            Mutation::FilterPassthrough => "filter_passthrough",
            Mutation::ReleaseInflightPrefetch => "release_inflight_prefetch",
            Mutation::DoubleCompleteIo => "double_complete_io",
            Mutation::BustRetryBudget => "bust_retry_budget",
            Mutation::StealthFree => "stealth_free",
        }
    }

    /// The invariant this mutation is designed to trip — the self-test
    /// matrix asserts the raised violation names exactly this.
    pub fn expected_invariant(&self) -> &'static str {
        match self {
            Mutation::FlipBitmapBit => "bitmap_agreement",
            Mutation::TamperUsageWord | Mutation::TamperLimitWord => "eq1_accounting",
            Mutation::SkipUsageDecrement => "eq1_usage_recount",
            Mutation::LeakFrame => "frame_conservation",
            Mutation::DoubleFreeFrame => "frame_ownership",
            Mutation::WarpClockHand => "clock_hand_monotonic",
            Mutation::ReorderReleaseQueue => "release_queue_priority",
            Mutation::FilterPassthrough => "one_behind_filter",
            Mutation::ReleaseInflightPrefetch => "inflight_prefetch_release",
            Mutation::DoubleCompleteIo => "io_double_complete",
            Mutation::BustRetryBudget => "io_retry_budget",
            Mutation::StealthFree => "oracle_residency",
        }
    }

    /// Which subsystem's `apply_mutation` hook performs the corruption.
    pub fn target(&self) -> MutationTarget {
        match self {
            Mutation::FlipBitmapBit
            | Mutation::TamperUsageWord
            | Mutation::TamperLimitWord
            | Mutation::SkipUsageDecrement
            | Mutation::LeakFrame
            | Mutation::DoubleFreeFrame
            | Mutation::WarpClockHand
            | Mutation::ReleaseInflightPrefetch
            | Mutation::StealthFree => MutationTarget::Vm,
            Mutation::ReorderReleaseQueue | Mutation::FilterPassthrough => MutationTarget::Runtime,
            Mutation::DoubleCompleteIo | Mutation::BustRetryBudget => MutationTarget::Disk,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_checked_truth_table() {
        assert!(!parse_checked(None));
        assert!(!parse_checked(Some("")));
        assert!(!parse_checked(Some("0")));
        assert!(!parse_checked(Some("false")));
        assert!(!parse_checked(Some("OFF")));
        assert!(!parse_checked(Some("no")));
        assert!(!parse_checked(Some("  0  ")));
        assert!(parse_checked(Some("1")));
        assert!(parse_checked(Some("true")));
        assert!(parse_checked(Some("yes")));
        assert!(parse_checked(Some("on")));
    }

    #[test]
    fn violation_display_names_everything() {
        let v = InvariantViolation {
            at: SimTime::from_nanos(42),
            subsystem: "vm",
            invariant: "frame_conservation",
            detail: String::from("free 3 + allocated 4 != total 8"),
            tail: String::from("t=41ns [vm] hard_fault\n"),
        };
        let s = v.to_string();
        for needle in [
            "vm/frame_conservation",
            "t=42ns",
            "free 3",
            "flight recorder tail",
        ] {
            assert!(s.contains(needle), "{needle} in {s}");
        }
    }

    #[test]
    fn mutation_matrix_is_complete_and_distinctly_labelled() {
        let all = Mutation::all();
        assert!(all.len() >= 10, "issue demands >= 10 mutations");
        let mut labels: Vec<&str> = all.iter().map(|m| m.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), all.len(), "labels are unique");
        for m in all {
            assert!(!m.expected_invariant().is_empty());
        }
    }

    #[test]
    fn raise_preserves_typed_payload() {
        let caught = std::panic::catch_unwind(|| {
            InvariantViolation {
                at: SimTime::ZERO,
                subsystem: "disk",
                invariant: "io_retry_budget",
                detail: String::from("3 failures > budget 2"),
                tail: String::new(),
            }
            .raise()
        })
        .unwrap_err();
        let v = caught
            .downcast_ref::<InvariantViolation>()
            .expect("typed payload survives");
        assert_eq!(v.invariant, "io_retry_budget");
        assert_eq!(v.subsystem, "disk");
    }
}
