//! Measurement primitives.
//!
//! The paper's evaluation reports (a) stacked execution-time breakdowns
//! (Figure 7), (b) event counts (Figure 8, Table 3, Figure 9, Figure 10c),
//! and (c) response-time series (Figures 1 and 10a/b). This module provides
//! the corresponding primitives: [`TimeBreakdown`], [`Counter`],
//! [`Histogram`], and [`Series`].

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// The four execution-time components of Figure 7.
///
/// From bottom to top of the paper's stacked bars: user code, system code
/// (primarily page-fault handling), stall for unavailable resources (memory,
/// memory-system locks, CPUs), and stall waiting for I/O.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TimeCategory {
    /// Executing user code (includes run-time layer overhead).
    User,
    /// Executing system code, primarily fault handling.
    System,
    /// Stalled waiting for unavailable resources: physical memory,
    /// memory-system locks, and CPUs.
    StallResource,
    /// Stalled waiting for I/O (demand page-in/out).
    StallIo,
}

impl TimeCategory {
    /// All categories in the paper's bottom-to-top bar order.
    pub const ALL: [TimeCategory; 4] = [
        TimeCategory::User,
        TimeCategory::System,
        TimeCategory::StallResource,
        TimeCategory::StallIo,
    ];

    /// Short label used in table output.
    pub fn label(self) -> &'static str {
        match self {
            TimeCategory::User => "user",
            TimeCategory::System => "system",
            TimeCategory::StallResource => "stall-res",
            TimeCategory::StallIo => "stall-io",
        }
    }
}

/// Accumulated per-process execution time, split by [`TimeCategory`].
#[derive(Clone, Copy, Default, Debug)]
pub struct TimeBreakdown {
    user: u64,
    system: u64,
    stall_resource: u64,
    stall_io: u64,
}

impl TimeBreakdown {
    /// A zeroed breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `d` to category `cat`.
    pub fn add(&mut self, cat: TimeCategory, d: SimDuration) {
        let slot = match cat {
            TimeCategory::User => &mut self.user,
            TimeCategory::System => &mut self.system,
            TimeCategory::StallResource => &mut self.stall_resource,
            TimeCategory::StallIo => &mut self.stall_io,
        };
        *slot = slot.saturating_add(d.as_nanos());
    }

    /// Returns the accumulated time in `cat`.
    pub fn get(&self, cat: TimeCategory) -> SimDuration {
        SimDuration::from_nanos(match cat {
            TimeCategory::User => self.user,
            TimeCategory::System => self.system,
            TimeCategory::StallResource => self.stall_resource,
            TimeCategory::StallIo => self.stall_io,
        })
    }

    /// Total across all categories.
    pub fn total(&self) -> SimDuration {
        SimDuration::from_nanos(
            self.user
                .saturating_add(self.system)
                .saturating_add(self.stall_resource)
                .saturating_add(self.stall_io),
        )
    }

    /// The fraction of the total attributable to `cat` (0 if total is 0).
    pub fn fraction(&self, cat: TimeCategory) -> f64 {
        let total = self.total().as_nanos();
        if total == 0 {
            0.0
        } else {
            self.get(cat).as_nanos() as f64 / total as f64
        }
    }

    /// Element-wise sum with another breakdown.
    pub fn merged(&self, other: &TimeBreakdown) -> TimeBreakdown {
        TimeBreakdown {
            user: self.user.saturating_add(other.user),
            system: self.system.saturating_add(other.system),
            stall_resource: self.stall_resource.saturating_add(other.stall_resource),
            stall_io: self.stall_io.saturating_add(other.stall_io),
        }
    }
}

impl fmt::Display for TimeBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "user={:.3}s sys={:.3}s res={:.3}s io={:.3}s (total {:.3}s)",
            self.get(TimeCategory::User).as_secs_f64(),
            self.get(TimeCategory::System).as_secs_f64(),
            self.get(TimeCategory::StallResource).as_secs_f64(),
            self.get(TimeCategory::StallIo).as_secs_f64(),
            self.total().as_secs_f64(),
        )
    }
}

/// A simple monotonically increasing event counter.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    pub fn bump(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A fixed-bucket latency histogram with power-of-two bucket boundaries.
///
/// Bucket `i` covers durations in `[2^i, 2^(i+1))` nanoseconds; bucket 0 also
/// absorbs zero.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram covering the full `u64` nanosecond range.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        let idx = if ns == 0 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample value (zero if empty).
    pub fn mean(&self) -> SimDuration {
        match self.sum_ns.checked_div(self.count) {
            Some(ns) => SimDuration::from_nanos(ns),
            None => SimDuration::ZERO,
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> SimDuration {
        SimDuration::from_nanos(self.sum_ns)
    }

    /// Approximate quantile (bucket upper bound containing the q-quantile).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return SimDuration::from_nanos(upper);
            }
        }
        self.max()
    }
}

/// An exact-tail latency digest: retains every recorded sample so
/// p50/p99/p999 are *exact* nearest-rank percentiles, not bucket upper
/// bounds like [`Histogram::quantile`]. Fleet-scale SLO enforcement
/// (surge_matrix, `RunResult::fleet`) needs the exact tail because a
/// power-of-two bucket near a bound can be off by almost 2x.
///
/// Nearest-rank definition: for `0 < p <= 1` over `n` sorted samples,
/// the percentile is the sample at rank `ceil(p * n)` (1-based).
#[derive(Clone, Debug, Default)]
pub struct TailDigest {
    samples: Vec<u64>,
    sorted: bool,
}

impl TailDigest {
    /// An empty digest.
    pub fn new() -> Self {
        TailDigest::default()
    }

    /// Records one response-time sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d.as_nanos());
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Mean of the samples (zero if empty).
    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u128 = self.samples.iter().map(|&s| u128::from(s)).sum();
        SimDuration::from_nanos((sum / self.samples.len() as u128) as u64)
    }

    /// Largest sample (zero if empty).
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.samples.iter().copied().max().unwrap_or(0))
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// Exact nearest-rank percentile for `p` in `(0, 1]` (zero if empty).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1]`.
    pub fn percentile(&mut self, p: f64) -> SimDuration {
        assert!(p > 0.0 && p <= 1.0, "percentile out of range: {p}");
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        self.ensure_sorted();
        let rank = ((p * self.samples.len() as f64).ceil() as usize).max(1);
        SimDuration::from_nanos(self.samples[rank - 1])
    }

    /// The SLO trio: exact (p50, p99, p999).
    pub fn tail(&mut self) -> (SimDuration, SimDuration, SimDuration) {
        (
            self.percentile(0.5),
            self.percentile(0.99),
            self.percentile(0.999),
        )
    }
}

/// Jain's fairness index over non-negative allocations:
/// `(Σx)² / (n·Σx²)`. Ranges from `1/n` (one party gets everything) to
/// `1.0` (perfect equality). Empty or all-zero inputs report `1.0`
/// (nothing is being divided unfairly).
pub fn jain(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sq)
}

/// A labelled (x, y) series, used for response-time sweeps (Figures 1, 10a).
#[derive(Clone, Debug, Default)]
pub struct Series {
    /// Series label, e.g. "prefetch-only".
    pub label: String,
    /// Data points as (x, y) pairs.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series with a label.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The maximum y value (NaN-free; zero if empty).
    pub fn max_y(&self) -> f64 {
        self.points.iter().map(|&(_, y)| y).fold(0.0, f64::max)
    }
}

/// A running summary of f64 samples: count, mean, min, max and (Welford)
/// standard deviation. Used by replication studies reporting spreads.
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0 for fewer than two samples).
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Relative spread `(max - min) / min` (0 if empty or min is 0).
    pub fn relative_spread(&self) -> f64 {
        if self.count == 0 || self.min <= 0.0 {
            0.0
        } else {
            (self.max - self.min) / self.min
        }
    }
}

/// A labelled interval measurement helper: tracks the start of a phase and
/// charges the elapsed time to a [`TimeBreakdown`] when the phase ends.
#[derive(Clone, Copy, Debug)]
pub struct PhaseTimer {
    start: SimTime,
    cat: TimeCategory,
}

impl PhaseTimer {
    /// Starts timing a phase of category `cat` at `now`.
    pub fn start(now: SimTime, cat: TimeCategory) -> Self {
        PhaseTimer { start: now, cat }
    }

    /// Ends the phase at `now`, charging the breakdown.
    pub fn finish(self, now: SimTime, breakdown: &mut TimeBreakdown) {
        breakdown.add(self.cat, now.since(self.start));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates_and_totals() {
        let mut b = TimeBreakdown::new();
        b.add(TimeCategory::User, SimDuration::from_nanos(10));
        b.add(TimeCategory::User, SimDuration::from_nanos(5));
        b.add(TimeCategory::StallIo, SimDuration::from_nanos(85));
        assert_eq!(b.get(TimeCategory::User).as_nanos(), 15);
        assert_eq!(b.total().as_nanos(), 100);
        assert!((b.fraction(TimeCategory::StallIo) - 0.85).abs() < 1e-12);
    }

    #[test]
    fn breakdown_merge() {
        let mut a = TimeBreakdown::new();
        a.add(TimeCategory::System, SimDuration::from_nanos(7));
        let mut b = TimeBreakdown::new();
        b.add(TimeCategory::System, SimDuration::from_nanos(3));
        b.add(TimeCategory::StallResource, SimDuration::from_nanos(2));
        let m = a.merged(&b);
        assert_eq!(m.get(TimeCategory::System).as_nanos(), 10);
        assert_eq!(m.get(TimeCategory::StallResource).as_nanos(), 2);
    }

    #[test]
    fn empty_breakdown_fraction_is_zero() {
        let b = TimeBreakdown::new();
        assert_eq!(b.fraction(TimeCategory::User), 0.0);
    }

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.bump();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn histogram_mean_max() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_nanos(100));
        h.record(SimDuration::from_nanos(300));
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean().as_nanos(), 200);
        assert_eq!(h.max().as_nanos(), 300);
        assert_eq!(h.sum().as_nanos(), 400);
    }

    #[test]
    fn histogram_quantile_bounds_sample() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(SimDuration::from_nanos(i));
        }
        // The median of 1..=1000 is ~500; the bucket upper bound containing it
        // is 511 (bucket [256, 512)).
        assert_eq!(h.quantile(0.5).as_nanos(), 511);
        assert!(h.quantile(1.0).as_nanos() >= 1000);
    }

    #[test]
    fn histogram_zero_sample() {
        let mut h = Histogram::new();
        h.record(SimDuration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), SimDuration::ZERO);
    }

    #[test]
    fn phase_timer_charges_elapsed() {
        let mut b = TimeBreakdown::new();
        let timer = PhaseTimer::start(SimTime::from_nanos(100), TimeCategory::StallIo);
        timer.finish(SimTime::from_nanos(250), &mut b);
        assert_eq!(b.get(TimeCategory::StallIo).as_nanos(), 150);
    }

    #[test]
    fn summary_statistics() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.relative_spread() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.relative_spread(), 0.0);
    }

    #[test]
    fn series_max_y() {
        let mut s = Series::new("x");
        s.push(1.0, 2.0);
        s.push(2.0, 5.0);
        s.push(3.0, 1.0);
        assert_eq!(s.max_y(), 5.0);
    }

    #[test]
    fn tail_digest_nearest_rank() {
        let mut d = TailDigest::new();
        for ns in [30, 10, 20, 40] {
            d.record(SimDuration::from_nanos(ns));
        }
        // ceil(0.5*4)=2 -> 20; ceil(0.99*4)=4 -> 40; p25 -> rank 1 -> 10.
        assert_eq!(d.percentile(0.5).as_nanos(), 20);
        assert_eq!(d.percentile(0.99).as_nanos(), 40);
        assert_eq!(d.percentile(0.25).as_nanos(), 10);
        assert_eq!(d.max().as_nanos(), 40);
        assert_eq!(d.mean().as_nanos(), 25);
        assert_eq!(d.count(), 4);
    }

    #[test]
    fn tail_digest_empty_is_zero() {
        let mut d = TailDigest::new();
        assert_eq!(d.percentile(0.999), SimDuration::ZERO);
        assert_eq!(
            d.tail(),
            (SimDuration::ZERO, SimDuration::ZERO, SimDuration::ZERO)
        );
    }

    #[test]
    fn jain_extremes() {
        assert_eq!(jain(&[]), 1.0);
        assert_eq!(jain(&[0.0, 0.0]), 1.0);
        assert!((jain(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One party gets everything: 1/n.
        assert!((jain(&[9.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
    }
}
