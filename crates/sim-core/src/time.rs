//! Virtual time.
//!
//! All simulated activity is ordered by a single global clock measured in
//! nanoseconds. [`SimTime`] is an absolute instant; [`SimDuration`] is a
//! span. Both are thin wrappers over `u64` with saturating arithmetic so a
//! runaway simulation saturates instead of wrapping around and corrupting
//! the event order.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant of virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; used as an "infinitely far away"
    /// sentinel for idle daemons.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this instant expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns this instant expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`.
    ///
    /// Saturates to zero if `earlier` is later than `self` (which would
    /// indicate an accounting bug; callers that care should assert).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by an integer factor, saturating.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scales the duration by a floating-point factor (rounds to nearest ns).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid factor: {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 = self.0.saturating_add(other.0);
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_nanos(7).as_nanos(), 7);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_nanos(100) + SimDuration::from_nanos(50);
        assert_eq!(t.as_nanos(), 150);
        assert_eq!((t - SimTime::from_nanos(100)).as_nanos(), 50);
        // Saturating: since() of an earlier time is zero, not wraparound.
        assert_eq!(
            SimTime::from_nanos(10).since(SimTime::from_nanos(20)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn saturation_at_max() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
        let d = SimDuration::from_nanos(u64::MAX).saturating_mul(3);
        assert_eq!(d.as_nanos(), u64::MAX);
    }

    #[test]
    fn float_conversions() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_nanos(), 1_500_000_000);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((d.as_millis_f64() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_nanos(10).mul_f64(0.25);
        assert_eq!(d.as_nanos(), 3); // 2.5 rounds to nearest even-free "round".
    }

    #[test]
    #[should_panic]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimTime::MAX > SimTime::from_nanos(u64::MAX - 1));
    }
}
