//! Bounded in-memory trace ring (legacy).
//!
//! Simulations can emit human-readable trace records (page steals, daemon
//! activations, fault outcomes) into a fixed-capacity ring. The ring is cheap
//! when disabled and never grows without bound, so it can be left wired into
//! hot paths.
//!
//! **Deprecated:** the workspace has migrated to structured events
//! ([`crate::obs`]); [`TraceRing`] remains as a string-formatting shim so
//! external callers keep compiling. [`TraceRecord`] is still current — the
//! engine derives legacy kernel-trace records from the structured stream.

use std::collections::VecDeque;

use crate::time::SimTime;

/// One trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the record was emitted.
    pub time: SimTime,
    /// Subsystem tag, e.g. `"vhand"`, `"releaser"`, `"fault"`.
    pub tag: &'static str,
    /// Free-form message.
    pub message: String,
}

/// A bounded ring of trace records.
///
/// # Examples
///
/// ```
/// use sim_core::trace::TraceRing;
/// use sim_core::SimTime;
///
/// let mut ring = TraceRing::new(2);
/// ring.set_enabled(true);
/// ring.emit(SimTime::ZERO, "fault", || "hard fault vpn=3".to_string());
/// assert_eq!(ring.records().count(), 1);
/// ```
#[deprecated(
    since = "0.5.0",
    note = "emit typed events through `sim_core::obs::Recorder` instead"
)]
#[derive(Debug)]
pub struct TraceRing {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

#[allow(deprecated)]
impl TraceRing {
    /// Creates a disabled ring with the given capacity.
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            enabled: false,
            dropped: 0,
        }
    }

    /// Enables or disables recording. Disabled emits are free apart from the
    /// branch (the message closure is not invoked).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Emits a record; `message` is only evaluated when enabled.
    pub fn emit(&mut self, time: SimTime, tag: &'static str, message: impl FnOnce() -> String) {
        if !self.enabled || self.capacity == 0 {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord {
            time,
            tag,
            message: message(),
        });
    }

    /// Iterates over retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of records evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears all retained records (the dropped count is preserved).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn disabled_ring_records_nothing() {
        let mut ring = TraceRing::new(8);
        ring.emit(SimTime::ZERO, "x", || panic!("must not be evaluated"));
        assert_eq!(ring.records().count(), 0);
    }

    #[test]
    fn enabled_ring_records() {
        let mut ring = TraceRing::new(8);
        ring.set_enabled(true);
        ring.emit(SimTime::from_nanos(5), "vhand", || "scan".into());
        let rec: Vec<_> = ring.records().collect();
        assert_eq!(rec.len(), 1);
        assert_eq!(rec[0].tag, "vhand");
        assert_eq!(rec[0].time, SimTime::from_nanos(5));
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut ring = TraceRing::new(2);
        ring.set_enabled(true);
        for i in 0..5u64 {
            ring.emit(SimTime::from_nanos(i), "t", || format!("{i}"));
        }
        let msgs: Vec<_> = ring.records().map(|r| r.message.clone()).collect();
        assert_eq!(msgs, vec!["3", "4"]);
        assert_eq!(ring.dropped(), 3);
    }

    #[test]
    fn zero_capacity_ring_is_safe() {
        let mut ring = TraceRing::new(0);
        ring.set_enabled(true);
        ring.emit(SimTime::ZERO, "t", || "m".into());
        assert_eq!(ring.records().count(), 0);
    }

    #[test]
    fn clear_preserves_dropped_count() {
        let mut ring = TraceRing::new(1);
        ring.set_enabled(true);
        ring.emit(SimTime::ZERO, "t", || "a".into());
        ring.emit(SimTime::ZERO, "t", || "b".into());
        assert_eq!(ring.dropped(), 1);
        ring.clear();
        assert_eq!(ring.records().count(), 0);
        assert_eq!(ring.dropped(), 1);
    }
}
