//! Property tests for the event queue: total order, FIFO tie-break,
//! cancellation accounting.

use proptest::prelude::*;
use sim_core::{EventQueue, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Whatever the schedule order, pops come out in non-decreasing time,
    /// and events at equal times come out in scheduling order.
    #[test]
    fn pops_are_ordered_and_fifo(times in prop::collection::vec(0u64..50, 1..200)) {
        let mut q = EventQueue::new();
        for (seq, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), (t, seq));
        }
        let mut last: Option<(u64, usize)> = None;
        let mut popped = 0;
        while let Some(ev) = q.pop() {
            let (t, seq) = ev.payload;
            prop_assert_eq!(ev.time, SimTime::from_nanos(t));
            if let Some((lt, lseq)) = last {
                prop_assert!(t >= lt, "time went backwards");
                if t == lt {
                    prop_assert!(seq > lseq, "FIFO violated at equal times");
                }
            }
            last = Some((t, seq));
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn cancellation_is_exact(
        times in prop::collection::vec(0u64..100, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 100),
    ) {
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            ids.push((i, q.schedule(SimTime::from_nanos(t), i)));
        }
        let mut cancelled = std::collections::HashSet::new();
        for (i, id) in &ids {
            if cancel_mask[*i % cancel_mask.len()] {
                prop_assert!(q.cancel(*id));
                cancelled.insert(*i);
            }
        }
        prop_assert_eq!(q.len(), times.len() - cancelled.len());
        let mut survivors = Vec::new();
        while let Some(ev) = q.pop() {
            survivors.push(ev.payload);
        }
        prop_assert_eq!(survivors.len(), times.len() - cancelled.len());
        for s in survivors {
            prop_assert!(!cancelled.contains(&s), "cancelled event {s} popped");
        }
    }

    /// Interleaved schedule/pop keeps causality: you can never pop a time
    /// earlier than one already popped.
    #[test]
    fn interleaved_operations_preserve_causality(
        ops in prop::collection::vec((0u64..1000, any::<bool>()), 1..200)
    ) {
        let mut q = EventQueue::new();
        let mut last_popped = SimTime::ZERO;
        for (dt, do_pop) in ops {
            let at = q.now() + sim_core::SimDuration::from_nanos(dt);
            q.schedule(at, ());
            if do_pop {
                if let Some(ev) = q.pop() {
                    prop_assert!(ev.time >= last_popped);
                    last_popped = ev.time;
                }
            }
        }
    }
}
