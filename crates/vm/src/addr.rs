//! Typed identifiers for pages, frames, and processes.

use std::fmt;

/// A process identifier (dense: processes are created sequentially).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// A virtual page number within one process's address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Vpn(pub u64);

impl Vpn {
    /// The page `n` pages after this one.
    pub fn offset(self, n: u64) -> Vpn {
        Vpn(self.0 + n)
    }
}

impl fmt::Display for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{:#x}", self.0)
    }
}

/// A physical frame number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pfn(pub u32);

impl fmt::Display for Pfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A half-open range of virtual pages `[start, start + len)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PageRange {
    /// First page of the range.
    pub start: Vpn,
    /// Number of pages.
    pub len: u64,
}

impl PageRange {
    /// Creates a range.
    pub fn new(start: Vpn, len: u64) -> Self {
        PageRange { start, len }
    }

    /// One past the last page.
    pub fn end(&self) -> Vpn {
        Vpn(self.start.0 + self.len)
    }

    /// Whether `vpn` falls inside the range.
    pub fn contains(&self, vpn: Vpn) -> bool {
        vpn.0 >= self.start.0 && vpn.0 < self.start.0 + self.len
    }

    /// Offset of `vpn` from the range start.
    ///
    /// # Panics
    ///
    /// Panics if `vpn` is outside the range.
    pub fn offset_of(&self, vpn: Vpn) -> u64 {
        assert!(self.contains(vpn), "{vpn} outside {self:?}");
        vpn.0 - self.start.0
    }

    /// Iterates over the pages of the range.
    pub fn iter(&self) -> impl Iterator<Item = Vpn> + '_ {
        (self.start.0..self.start.0 + self.len).map(Vpn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_contains_and_offsets() {
        let r = PageRange::new(Vpn(10), 5);
        assert!(r.contains(Vpn(10)));
        assert!(r.contains(Vpn(14)));
        assert!(!r.contains(Vpn(15)));
        assert!(!r.contains(Vpn(9)));
        assert_eq!(r.offset_of(Vpn(12)), 2);
        assert_eq!(r.end(), Vpn(15));
    }

    #[test]
    fn range_iteration() {
        let r = PageRange::new(Vpn(3), 3);
        let pages: Vec<_> = r.iter().collect();
        assert_eq!(pages, vec![Vpn(3), Vpn(4), Vpn(5)]);
    }

    #[test]
    #[should_panic]
    fn offset_of_outside_panics() {
        PageRange::new(Vpn(0), 1).offset_of(Vpn(5));
    }

    #[test]
    fn vpn_offset() {
        assert_eq!(Vpn(7).offset(3), Vpn(10));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Pid(3).to_string(), "pid3");
        assert_eq!(Pfn(9).to_string(), "f9");
        assert_eq!(Vpn(16).to_string(), "v0x10");
    }
}
