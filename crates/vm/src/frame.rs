//! The physical frame table.

use sim_core::SimTime;

use crate::addr::{Pfn, Pid, Vpn};

/// Who put a frame on the free list. Distinguishing the two sources is what
/// lets us regenerate the paper's Figure 9 (freed-page outcome breakdown).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FreeSource {
    /// Never used since boot (initial pool).
    Initial,
    /// Reclaimed by the paging daemon's clock algorithm.
    Daemon,
    /// Freed by an explicit release request via the releaser daemon.
    Release,
    /// Freed because the owning process exited or unmapped the region.
    Unmap,
}

/// Per-frame metadata.
#[derive(Clone, Debug)]
pub struct FrameInfo {
    /// Content identity: the page whose data this frame (still) holds.
    /// Retained while the frame sits on the free list so the owner can
    /// rescue it.
    pub owner: Option<(Pid, Vpn)>,
    /// Whether the content is dirty relative to swap.
    pub dirty: bool,
    /// Whether the frame is currently on the free list.
    pub on_free_list: bool,
    /// How the frame last entered the free list.
    pub source: FreeSource,
    /// The instant any in-flight writeback of the previous content
    /// completes; a demand read into this frame cannot start earlier.
    pub clean_at: SimTime,
}

impl FrameInfo {
    fn initial() -> Self {
        FrameInfo {
            owner: None,
            dirty: false,
            on_free_list: true,
            source: FreeSource::Initial,
            clean_at: SimTime::ZERO,
        }
    }
}

/// The physical frame table: fixed pool of `n` frames.
#[derive(Clone, Debug)]
pub struct FrameTable {
    frames: Vec<FrameInfo>,
}

impl FrameTable {
    /// Creates a table of `n` frames, all initially free.
    pub fn new(n: usize) -> Self {
        FrameTable {
            frames: (0..n).map(|_| FrameInfo::initial()).collect(),
        }
    }

    /// Total number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the table is empty (only in degenerate test configs).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Immutable access to one frame's metadata.
    ///
    /// # Panics
    ///
    /// Panics if `pfn` is out of range.
    pub fn get(&self, pfn: Pfn) -> &FrameInfo {
        &self.frames[pfn.0 as usize]
    }

    /// Mutable access to one frame's metadata.
    ///
    /// # Panics
    ///
    /// Panics if `pfn` is out of range.
    pub fn get_mut(&mut self, pfn: Pfn) -> &mut FrameInfo {
        &mut self.frames[pfn.0 as usize]
    }

    /// Iterates over `(pfn, info)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Pfn, &FrameInfo)> {
        self.frames
            .iter()
            .enumerate()
            .map(|(i, f)| (Pfn(i as u32), f))
    }

    /// Counts frames currently allocated (not on the free list).
    pub fn allocated_count(&self) -> usize {
        self.frames.iter().filter(|f| !f.on_free_list).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_table_all_free() {
        let t = FrameTable::new(8);
        assert_eq!(t.len(), 8);
        assert_eq!(t.allocated_count(), 0);
        for (_, f) in t.iter() {
            assert!(f.on_free_list);
            assert!(f.owner.is_none());
            assert_eq!(f.source, FreeSource::Initial);
        }
    }

    #[test]
    fn mutation_roundtrip() {
        let mut t = FrameTable::new(2);
        t.get_mut(Pfn(1)).owner = Some((Pid(3), Vpn(9)));
        t.get_mut(Pfn(1)).on_free_list = false;
        assert_eq!(t.get(Pfn(1)).owner, Some((Pid(3), Vpn(9))));
        assert_eq!(t.allocated_count(), 1);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        FrameTable::new(1).get(Pfn(5));
    }
}
