//! The global free list, with rescue support.
//!
//! Frames are allocated from the **head** and freed pages are appended at
//! the **tail** — the paper's releaser "places released pages at the end of
//! the free list, giving pages that were released too early a chance to be
//! rescued". A *rescue* removes a specific frame from the middle of the
//! list when its former owner faults on the page before the frame is
//! reallocated; the page returns to the owner without any I/O.
//!
//! Removal from the middle uses lazy deletion: rescued frames are flagged in
//! the frame table and skipped when they surface at the head, so every
//! operation stays `O(1)` amortized.

use std::collections::HashMap;
use std::collections::VecDeque;

use crate::addr::{Pfn, Pid, Vpn};
use crate::frame::FrameTable;

/// The global free list.
#[derive(Clone, Debug, Default)]
pub struct FreeList {
    queue: VecDeque<Pfn>,
    live: usize,
    rescue_index: HashMap<(Pid, Vpn), Pfn>,
}

impl FreeList {
    /// Creates an empty free list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Populates the list with every frame of a fresh frame table.
    pub fn fill_initial(&mut self, frames: &FrameTable) {
        for (pfn, info) in frames.iter() {
            debug_assert!(info.on_free_list);
            self.queue.push_back(pfn);
            self.live += 1;
        }
    }

    /// Number of frames available for allocation.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Whether any frame is available.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Appends a freed frame at the tail.
    ///
    /// If the frame retains a content identity (`owner` set in the frame
    /// table) and `rescuable` is true, it is indexed for rescue.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the frame is already on the list.
    pub fn push_freed(&mut self, frames: &mut FrameTable, pfn: Pfn, rescuable: bool) {
        let info = frames.get_mut(pfn);
        debug_assert!(!info.on_free_list, "double free of {pfn}");
        info.on_free_list = true;
        if !rescuable {
            info.owner = None;
        }
        if let Some(key) = info.owner {
            // A newer frame for the same (pid, vpn) shouldn't exist, but an
            // older stale mapping might if the page cycled quickly; the
            // newest frame wins.
            self.rescue_index.insert(key, pfn);
        }
        self.queue.push_back(pfn);
        self.live += 1;
    }

    /// Allocates a frame from the head of the list.
    ///
    /// The frame loses its previous content identity (no longer rescuable).
    /// Returns `None` when the list is empty.
    pub fn alloc(&mut self, frames: &mut FrameTable) -> Option<Pfn> {
        while let Some(pfn) = self.queue.pop_front() {
            let info = frames.get_mut(pfn);
            if !info.on_free_list {
                // Lazily deleted (rescued earlier); skip.
                continue;
            }
            info.on_free_list = false;
            if let Some(key) = info.owner.take() {
                // Only remove the index entry if it still points at us.
                if self.rescue_index.get(&key) == Some(&pfn) {
                    self.rescue_index.remove(&key);
                }
            }
            self.live -= 1;
            return Some(pfn);
        }
        None
    }

    /// Attempts to rescue the frame holding `(pid, vpn)` from the list.
    ///
    /// On success the frame is removed from the list (lazily) and returned
    /// still holding its content; the caller re-maps it.
    pub fn rescue(&mut self, frames: &mut FrameTable, pid: Pid, vpn: Vpn) -> Option<Pfn> {
        let pfn = self.rescue_index.remove(&(pid, vpn))?;
        let info = frames.get_mut(pfn);
        if !info.on_free_list || info.owner != Some((pid, vpn)) {
            // Stale index entry: the frame was reallocated meanwhile.
            return None;
        }
        info.on_free_list = false;
        self.live -= 1;
        // The queue entry remains and is skipped when it reaches the head.
        Some(pfn)
    }

    /// Whether `(pid, vpn)` currently has a rescuable frame.
    pub fn is_rescuable(&self, pid: Pid, vpn: Vpn) -> bool {
        self.rescue_index.contains_key(&(pid, vpn))
    }

    /// Test-only corruption: silently drops one live frame from the list
    /// while the frame table still believes it is free (a leaked frame).
    /// Exists solely for the checked-mode mutation matrix. Returns false
    /// when the list has no live entry to leak.
    #[doc(hidden)]
    pub fn corrupt_leak_frame(&mut self, frames: &FrameTable) -> bool {
        let Some(idx) = self
            .queue
            .iter()
            .position(|&pfn| frames.get(pfn).on_free_list)
        else {
            return false;
        };
        self.queue.remove(idx);
        self.live -= 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: usize) -> (FrameTable, FreeList) {
        let frames = FrameTable::new(n);
        let mut free = FreeList::new();
        free.fill_initial(&frames);
        (frames, free)
    }

    fn take(frames: &mut FrameTable, free: &mut FreeList) -> Pfn {
        free.alloc(frames).expect("frame available")
    }

    #[test]
    fn initial_fill_and_alloc_order() {
        let (mut frames, mut free) = setup(3);
        assert_eq!(free.live(), 3);
        assert_eq!(take(&mut frames, &mut free), Pfn(0));
        assert_eq!(take(&mut frames, &mut free), Pfn(1));
        assert_eq!(take(&mut frames, &mut free), Pfn(2));
        assert!(free.alloc(&mut frames).is_none());
        assert_eq!(free.live(), 0);
    }

    #[test]
    fn freed_pages_go_to_tail() {
        let (mut frames, mut free) = setup(2);
        let a = take(&mut frames, &mut free);
        frames.get_mut(a).owner = Some((Pid(1), Vpn(7)));
        free.push_freed(&mut frames, a, true);
        // Tail order: the untouched frame 1 comes out before the freed one.
        assert_eq!(take(&mut frames, &mut free), Pfn(1));
        assert_eq!(take(&mut frames, &mut free), a);
    }

    #[test]
    fn rescue_returns_content_frame() {
        let (mut frames, mut free) = setup(2);
        let a = take(&mut frames, &mut free);
        frames.get_mut(a).owner = Some((Pid(1), Vpn(7)));
        free.push_freed(&mut frames, a, true);
        assert!(free.is_rescuable(Pid(1), Vpn(7)));
        let rescued = free.rescue(&mut frames, Pid(1), Vpn(7)).unwrap();
        assert_eq!(rescued, a);
        assert!(!free.is_rescuable(Pid(1), Vpn(7)));
        assert_eq!(free.live(), 1);
        // The lazily deleted entry is skipped on allocation.
        assert_eq!(take(&mut frames, &mut free), Pfn(1));
        assert!(free.alloc(&mut frames).is_none());
    }

    #[test]
    fn allocation_clears_identity() {
        let (mut frames, mut free) = setup(1);
        let a = take(&mut frames, &mut free);
        frames.get_mut(a).owner = Some((Pid(2), Vpn(3)));
        free.push_freed(&mut frames, a, true);
        let b = take(&mut frames, &mut free);
        assert_eq!(a, b);
        assert!(frames.get(b).owner.is_none());
        assert!(free.rescue(&mut frames, Pid(2), Vpn(3)).is_none());
    }

    #[test]
    fn non_rescuable_free_drops_identity() {
        let (mut frames, mut free) = setup(1);
        let a = take(&mut frames, &mut free);
        frames.get_mut(a).owner = Some((Pid(2), Vpn(3)));
        free.push_freed(&mut frames, a, false);
        assert!(!free.is_rescuable(Pid(2), Vpn(3)));
        assert!(frames.get(a).owner.is_none());
    }

    #[test]
    fn live_count_is_conserved() {
        let (mut frames, mut free) = setup(10);
        let total = 10;
        let mut held = Vec::new();
        for _ in 0..6 {
            held.push(take(&mut frames, &mut free));
        }
        assert_eq!(free.live() + held.len(), total);
        for pfn in held.drain(..3) {
            free.push_freed(&mut frames, pfn, false);
        }
        assert_eq!(free.live(), 7);
        assert_eq!(frames.allocated_count(), 3);
    }

    #[test]
    fn rescue_after_realloc_fails_cleanly() {
        let (mut frames, mut free) = setup(1);
        let a = take(&mut frames, &mut free);
        frames.get_mut(a).owner = Some((Pid(1), Vpn(1)));
        free.push_freed(&mut frames, a, true);
        let _b = take(&mut frames, &mut free); // reallocated to someone else
        assert!(free.rescue(&mut frames, Pid(1), Vpn(1)).is_none());
    }
}
