//! IRIX-like virtual memory subsystem.
//!
//! This crate reproduces the operating-system half of "Taming the Memory
//! Hogs" (Brown & Mowry, OSDI 2000): the stock IRIX 6.5 paging machinery the
//! paper measures against, plus the paper's modest extensions.
//!
//! # Stock machinery
//!
//! * [`frame`] / [`freelist`] — the physical frame table and the global free
//!   list. Freed frames keep their content identity until reallocation, so a
//!   faulting process can **rescue** its page from the free list without I/O.
//! * [`pagetable`] — per-process page tables. The simulated MIPS TLB has no
//!   reference bits, so the paging daemon samples references *in software*
//!   by invalidating PTEs; the resulting revalidation traps are the **soft
//!   page faults** of the paper's Figure 8.
//! * [`pagingd`] — the global clock-algorithm paging daemon ("vhand"): one
//!   pass invalidates, a page still unreferenced on the next pass is stolen.
//!   It holds each victim's address-space lock for whole scan chunks, which
//!   is the lock contention the paper identifies.
//! * [`lock`] — address-space locks modelled as deterministic FIFO resource
//!   timelines with wait-time accounting.
//! * [`tlb`] — a small TLB model (prefetched pages are deliberately not
//!   inserted).
//!
//! # Paper extensions
//!
//! * [`policy`] — the **PagingDirected** policy module: user-level
//!   `prefetch`/`release` operations on an attached address range.
//! * [`shared_page`] — the read-only shared page: a residency bitmap plus
//!   lazily updated *current usage* and *upper limit* words (Eq. 1).
//! * [`releaser`] — the specialized releasing daemon: frees pre-identified
//!   pages in small batches under short lock holds.
//!
//! The facade is [`VmSys`]; every externally visible action (touch,
//! prefetch, release, daemon service) returns explicit time/outcome
//! information that the simulation engine charges to the Figure 7 time
//! categories.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod frame;
pub mod freelist;
pub mod lock;
pub mod outcome;
pub mod pagetable;
pub mod pagingd;
pub mod params;
pub mod policy;
pub mod pressure;
pub mod quota;
pub mod releaser;
pub mod shared_page;
pub mod stats;
pub mod tlb;
pub mod vmsys;

pub use addr::{PageRange, Pfn, Pid, Vpn};
pub use outcome::{PrefetchOutcome, TouchKind, TouchResult};
pub use pagetable::PageTableError;
pub use params::{CostParams, Tunables};
pub use pressure::PressureMonitor;
pub use quota::{QuotaSet, TenantQuota};
pub use stats::{ProcStats, VmStats};
pub use vmsys::{Backing, SharedView, VmError, VmSys};
