//! Deterministic FIFO resource-timeline locks.
//!
//! Rather than modelling blocking and wakeups explicitly, a lock is a
//! *timeline*: acquiring it at time `t` for a hold of `h` returns the actual
//! start `max(t, free_at)` and advances `free_at` to `start + h`. Requests
//! are served in call order, which — because the simulation engine executes
//! operations in global time order — is FIFO in simulated time.
//!
//! This models the paper's observation precisely: when the paging daemon
//! holds a process's address-space lock while stealing a big batch of pages,
//! page faults for that address space cannot be serviced and the faulting
//! process accumulates "stalled for resources" time.

use sim_core::stats::Counter;
use sim_core::{SimDuration, SimTime};

/// Aggregate lock statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct LockStats {
    /// Number of acquisitions.
    pub acquisitions: Counter,
    /// Acquisitions that had to wait.
    pub contended: Counter,
    /// Total time spent waiting.
    pub total_wait: SimDuration,
    /// Total time the lock was held.
    pub total_hold: SimDuration,
}

/// A FIFO timeline lock (see module docs).
#[derive(Clone, Debug, Default)]
pub struct TimelineLock {
    free_at: SimTime,
    stats: LockStats,
}

/// The outcome of a lock acquisition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Acquisition {
    /// When the hold actually began.
    pub start: SimTime,
    /// When the hold ends (lock free again).
    pub end: SimTime,
    /// Time spent waiting before the hold began.
    pub wait: SimDuration,
}

impl TimelineLock {
    /// Creates a free lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires the lock at `now` for a hold of `hold`.
    pub fn acquire(&mut self, now: SimTime, hold: SimDuration) -> Acquisition {
        let start = if self.free_at > now {
            self.stats.contended.bump();
            self.stats.total_wait += self.free_at.since(now);
            self.free_at
        } else {
            now
        };
        let end = start + hold;
        self.free_at = end;
        self.stats.acquisitions.bump();
        self.stats.total_hold += hold;
        Acquisition {
            start,
            end,
            wait: start.since(now),
        }
    }

    /// The instant the lock next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1000)
    }

    fn d(us: u64) -> SimDuration {
        SimDuration::from_micros(us)
    }

    #[test]
    fn uncontended_acquire_starts_immediately() {
        let mut l = TimelineLock::new();
        let a = l.acquire(t(100), d(10));
        assert_eq!(a.start, t(100));
        assert_eq!(a.end, t(110));
        assert_eq!(a.wait, SimDuration::ZERO);
        assert_eq!(l.stats().contended.get(), 0);
    }

    #[test]
    fn contended_acquire_waits_fifo() {
        let mut l = TimelineLock::new();
        l.acquire(t(0), d(100));
        let a = l.acquire(t(30), d(10));
        assert_eq!(a.start, t(100));
        assert_eq!(a.wait, d(70));
        let b = l.acquire(t(40), d(5));
        assert_eq!(b.start, t(110), "third waits for second (FIFO)");
    }

    #[test]
    fn stats_accumulate() {
        let mut l = TimelineLock::new();
        l.acquire(t(0), d(50));
        l.acquire(t(10), d(20));
        let s = l.stats();
        assert_eq!(s.acquisitions.get(), 2);
        assert_eq!(s.contended.get(), 1);
        assert_eq!(s.total_wait, d(40));
        assert_eq!(s.total_hold, d(70));
    }

    #[test]
    fn zero_hold_is_allowed() {
        let mut l = TimelineLock::new();
        let a = l.acquire(t(5), SimDuration::ZERO);
        assert_eq!(a.start, a.end);
        assert_eq!(l.free_at(), t(5));
    }
}
