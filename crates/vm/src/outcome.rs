//! Outcomes returned by the VM facade.
//!
//! Every externally visible VM operation returns explicit timing so the
//! simulation engine can charge the Figure 7 categories (user, system,
//! resource stall, I/O stall) without the VM knowing about the engine.

use sim_core::{SimDuration, SimTime};

use crate::frame::FreeSource;

/// Classification of a memory touch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TouchKind {
    /// Valid mapping, TLB hit: free.
    Hit,
    /// Valid mapping, TLB miss: software refill only.
    TlbMiss,
    /// Resident but invalidated by the paging daemon's reference sampling —
    /// the Figure 8 soft fault.
    SoftFaultDaemon,
    /// Resident but invalidated by a pending release request; the touch
    /// cancels the release.
    SoftFaultRelease,
    /// First touch of a prefetched page: validation (plus a stall if the
    /// prefetch I/O has not finished).
    PrefetchValidate,
    /// Page was on the free list and was rescued without I/O.
    Rescue(FreeSource),
    /// Demand page-in from swap.
    HardFault,
    /// First touch of anonymous memory: zero-fill minor fault.
    ZeroFill,
}

impl TouchKind {
    /// Whether this outcome required disk I/O.
    pub fn is_hard(self) -> bool {
        matches!(self, TouchKind::HardFault)
    }
}

/// Timed result of a touch.
///
/// Always satisfies `done_at - now == system + resource_wait + io_wait`,
/// and the two sub-attributions nest exactly: `lock_wait <=
/// resource_wait` (the rest was waiting for free memory or fault setup)
/// and `io_queue <= io_wait` (the rest was the disk's positioning +
/// transfer). The span layer relies on both invariants to tile each
/// request's latency without gaps or overlaps.
#[derive(Clone, Copy, Debug)]
pub struct TouchResult {
    /// What happened.
    pub kind: TouchKind,
    /// CPU time spent in the kernel (fault handling).
    pub system: SimDuration,
    /// Time stalled waiting for locks or free memory.
    pub resource_wait: SimDuration,
    /// Time stalled waiting for disk I/O.
    pub io_wait: SimDuration,
    /// The portion of `resource_wait` spent acquiring the address-space
    /// lock.
    pub lock_wait: SimDuration,
    /// The portion of `io_wait` the request spent queued at the swap
    /// device (FIFO, bus arbitration, retries) rather than in the final
    /// positioning + transfer.
    pub io_queue: SimDuration,
    /// Instant at which the touch completes and the process may continue.
    pub done_at: SimTime,
}

impl TouchResult {
    /// A free hit at `now`.
    pub fn hit(now: SimTime) -> Self {
        TouchResult {
            kind: TouchKind::Hit,
            system: SimDuration::ZERO,
            resource_wait: SimDuration::ZERO,
            io_wait: SimDuration::ZERO,
            lock_wait: SimDuration::ZERO,
            io_queue: SimDuration::ZERO,
            done_at: now,
        }
    }
}

/// Result of a prefetch request into the PagingDirected PM.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PrefetchOutcome {
    /// The page is already resident; nothing to do.
    AlreadyResident,
    /// Free memory was at or below `min_freemem`; the request was discarded
    /// immediately so prefetching never forces stealing.
    Discarded,
    /// The page was on the free list and was rescued without I/O.
    Rescued,
    /// A page-in was started; it completes at the given instant.
    Started {
        /// When the page will be resident.
        arrives_at: SimTime,
    },
}

/// Result of issuing a release request (the enqueue, not the free).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReleaseEnqueue {
    /// Pages accepted into the releaser's work queue.
    pub accepted: usize,
    /// Pages skipped because they were not resident.
    pub skipped_nonresident: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_constructor_is_free() {
        let r = TouchResult::hit(SimTime::from_nanos(9));
        assert_eq!(r.kind, TouchKind::Hit);
        assert_eq!(r.done_at, SimTime::from_nanos(9));
        assert_eq!(r.system, SimDuration::ZERO);
    }

    #[test]
    fn hard_classification() {
        assert!(TouchKind::HardFault.is_hard());
        assert!(!TouchKind::Rescue(FreeSource::Daemon).is_hard());
        assert!(!TouchKind::ZeroFill.is_hard());
    }
}
