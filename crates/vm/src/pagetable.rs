//! Per-process page tables.
//!
//! The simulated hardware is MIPS-like: **no reference bit**. The paging
//! daemon samples references by clearing `valid` on resident pages; the next
//! touch traps (a *soft fault*), revalidates, and thereby proves the page is
//! live. The same trick backs the PagingDirected release path: a release
//! request invalidates the PTE so that any touch between the request and the
//! releaser servicing it is observable and cancels the release.

use std::collections::HashMap;

use sim_core::SimTime;

use crate::addr::{Pfn, Vpn};
use disk::SwapSlot;

/// Why a resident PTE is currently invalid.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InvalidReason {
    /// The paging daemon cleared `valid` to sample the reference bit in
    /// software. Revalidation counts as a Figure 8 soft fault.
    DaemonSample,
    /// A release request cleared `valid`; a touch before the releaser runs
    /// cancels the release.
    ReleasePending,
    /// The page was prefetched and has not been referenced yet (the PM does
    /// not fully validate prefetched pages nor insert TLB entries).
    Prefetched,
}

/// A page-table entry.
#[derive(Clone, Copy, Debug)]
pub struct Pte {
    /// The backing frame while resident.
    pub pfn: Option<Pfn>,
    /// Hardware-valid: a touch of a resident invalid page traps.
    pub valid: bool,
    /// Why the entry is invalid while resident.
    pub invalid_reason: Option<InvalidReason>,
    /// Dirty relative to swap.
    pub dirty: bool,
    /// For pages the daemon's clock has sampled: still unreferenced.
    /// Set on the sampling pass, cleared by any touch; a page whose flag is
    /// still set on the next pass is stolen.
    pub clock_sampled: bool,
    /// Hardware reference bit (only meaningful when the machine is
    /// configured with `hardware_refbits`): set by every touch, cleared by
    /// the daemon's sampling pass without invalidating the PTE.
    pub hw_referenced: bool,
    /// When a prefetch in flight will have arrived (touches before this
    /// stall on the I/O).
    pub arrives_at: SimTime,
    /// Last reference (touch) time.
    pub last_ref: SimTime,
    /// When a release request was made for this page, if one is pending.
    pub release_requested: Option<SimTime>,
    /// The swap slot holding this page's backing copy, once assigned.
    pub swap_slot: Option<SwapSlot>,
    /// Whether the page has ever been materialized (zero-filled or paged
    /// in). Untouched zero-fill pages have no content anywhere.
    pub materialized: bool,
}

impl Default for Pte {
    fn default() -> Self {
        Pte {
            pfn: None,
            valid: false,
            invalid_reason: None,
            dirty: false,
            clock_sampled: false,
            hw_referenced: false,
            arrives_at: SimTime::ZERO,
            last_ref: SimTime::ZERO,
            release_requested: None,
            swap_slot: None,
            materialized: false,
        }
    }
}

impl Pte {
    /// Whether the page is resident in physical memory.
    pub fn resident(&self) -> bool {
        self.pfn.is_some()
    }
}

/// Why a page-table operation could not be performed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PageTableError {
    /// The page has no entry at all.
    Unmapped(Vpn),
    /// The page has an entry but no backing frame.
    NotResident(Vpn),
}

impl std::fmt::Display for PageTableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageTableError::Unmapped(vpn) => write!(f, "unmap of unmapped {vpn}"),
            PageTableError::NotResident(vpn) => {
                write!(f, "unmap of non-resident page {vpn}")
            }
        }
    }
}

impl std::error::Error for PageTableError {}

/// A per-process page table (sparse map over the virtual address space).
#[derive(Clone, Debug, Default)]
pub struct PageTable {
    entries: HashMap<Vpn, Pte>,
    resident: u64,
}

impl PageTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up an entry; absent entries read as the default (non-resident).
    pub fn get(&self, vpn: Vpn) -> Pte {
        self.entries.get(&vpn).copied().unwrap_or_default()
    }

    /// Mutable entry access, materializing a default entry if absent.
    pub fn entry(&mut self, vpn: Vpn) -> &mut Pte {
        self.entries.entry(vpn).or_default()
    }

    /// Number of resident pages (the process RSS in pages).
    pub fn resident_pages(&self) -> u64 {
        self.resident
    }

    /// Marks `vpn` resident in `pfn`. Maintains the RSS count.
    ///
    /// # Panics
    ///
    /// Panics (debug) if already resident.
    pub fn map(&mut self, vpn: Vpn, pfn: Pfn) {
        let e = self.entries.entry(vpn).or_default();
        debug_assert!(e.pfn.is_none(), "double map of {vpn}");
        e.pfn = Some(pfn);
        self.resident += 1;
    }

    /// Removes the residency of `vpn`, returning the frame it occupied.
    ///
    /// # Panics
    ///
    /// Panics if the page is not resident; use [`PageTable::try_unmap`] on
    /// paths where that is a recoverable condition.
    pub fn unmap(&mut self, vpn: Vpn) -> Pfn {
        self.try_unmap(vpn).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PageTable::unmap`]: removes the residency of `vpn`,
    /// returning the frame it occupied, or the reason it could not.
    pub fn try_unmap(&mut self, vpn: Vpn) -> Result<Pfn, PageTableError> {
        let e = self
            .entries
            .get_mut(&vpn)
            .ok_or(PageTableError::Unmapped(vpn))?;
        let pfn = e.pfn.take().ok_or(PageTableError::NotResident(vpn))?;
        e.valid = false;
        e.invalid_reason = None;
        e.clock_sampled = false;
        e.release_requested = None;
        self.resident -= 1;
        Ok(pfn)
    }

    /// Iterates over all materialized entries.
    pub fn iter(&self) -> impl Iterator<Item = (&Vpn, &Pte)> {
        self.entries.iter()
    }

    /// Test-only corruption: desynchronizes the cached resident counter
    /// from the entries (models a skipped Eq. 1 usage decrement). Exists
    /// solely for the checked-mode mutation matrix.
    #[doc(hidden)]
    pub fn corrupt_resident_count(&mut self) {
        self.resident += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_entry_is_nonresident() {
        let pt = PageTable::new();
        let e = pt.get(Vpn(5));
        assert!(!e.resident());
        assert!(!e.valid);
        assert!(!e.materialized);
    }

    #[test]
    fn map_unmap_tracks_rss() {
        let mut pt = PageTable::new();
        pt.map(Vpn(1), Pfn(10));
        pt.map(Vpn(2), Pfn(11));
        assert_eq!(pt.resident_pages(), 2);
        assert_eq!(pt.unmap(Vpn(1)), Pfn(10));
        assert_eq!(pt.resident_pages(), 1);
        assert!(!pt.get(Vpn(1)).resident());
        assert!(pt.get(Vpn(2)).resident());
    }

    #[test]
    fn unmap_clears_transient_state() {
        let mut pt = PageTable::new();
        pt.map(Vpn(1), Pfn(0));
        {
            let e = pt.entry(Vpn(1));
            e.valid = true;
            e.clock_sampled = true;
            e.release_requested = Some(SimTime::from_nanos(5));
            e.invalid_reason = Some(InvalidReason::DaemonSample);
        }
        pt.unmap(Vpn(1));
        let e = pt.get(Vpn(1));
        assert!(!e.valid);
        assert!(!e.clock_sampled);
        assert!(e.release_requested.is_none());
        assert!(e.invalid_reason.is_none());
    }

    #[test]
    #[should_panic(expected = "unmap of unmapped")]
    fn unmap_absent_panics() {
        PageTable::new().unmap(Vpn(9));
    }

    #[test]
    fn try_unmap_reports_typed_errors() {
        let mut pt = PageTable::new();
        assert_eq!(pt.try_unmap(Vpn(9)), Err(PageTableError::Unmapped(Vpn(9))));
        pt.entry(Vpn(9)).dirty = true; // materialized but not resident
        assert_eq!(
            pt.try_unmap(Vpn(9)),
            Err(PageTableError::NotResident(Vpn(9)))
        );
        pt.map(Vpn(9), Pfn(3));
        assert_eq!(pt.try_unmap(Vpn(9)), Ok(Pfn(3)));
        assert_eq!(pt.resident_pages(), 0);
    }

    #[test]
    fn entry_materializes() {
        let mut pt = PageTable::new();
        pt.entry(Vpn(3)).dirty = true;
        assert!(pt.get(Vpn(3)).dirty);
        assert_eq!(pt.iter().count(), 1);
    }
}
