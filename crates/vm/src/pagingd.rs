//! The paging daemon ("vhand").
//!
//! IRIX's global replacement daemon, as the paper describes it:
//!
//! > "a variant of a clock algorithm is used, in which pages can be
//! > reclaimed if they have not been referenced for a number of passes of
//! > the clock hand. Since the MIPS TLB does not have reference bits,
//! > reference information must be simulated in software using the valid
//! > bit instead. As free memory becomes low, pages are periodically marked
//! > invalid to see if they are still in use."
//!
//! The two observable costs the paper attributes to this design are both
//! modelled here:
//!
//! 1. **Soft page faults** — every invalidation of a live page forces the
//!    owner to re-validate on its next reference (Figure 8).
//! 2. **Lock contention** — the daemon holds each victim's address-space
//!    lock for a whole per-process batch of invalidations/steals, during
//!    which that process's page faults cannot be serviced.
//!
//! A page is stolen on the pass *after* it was sampled, if nothing touched
//! it in between (`clock_sampled` still set).

use sim_core::obs::EventKind;
use sim_core::{SimDuration, SimTime};

use crate::addr::{Pfn, Pid, Vpn};
use crate::frame::FreeSource;
use crate::pagetable::InvalidReason;
use crate::vmsys::VmSys;

/// Persistent daemon state.
#[derive(Clone, Debug, Default)]
pub struct PagingDaemon {
    hand: usize,
    wake_requested: bool,
}

/// One action the scan phase decided on (applied under the victim's lock).
#[derive(Clone, Copy, Debug)]
enum Action {
    /// Clear `valid` to sample the reference bit (live page, software
    /// sampling — the MIPS case).
    Invalidate(Vpn),
    /// Clear the hardware reference bit (live page, hardware-refbit mode:
    /// no PTE invalidation, no later soft fault).
    ClearRef(Vpn),
    /// Mark an already-invalid page as sampled (no PTE change visible to
    /// the owner; costs only scan work).
    MarkSampled(Vpn),
    /// Steal the page: unmap, write back if dirty, free-list tail.
    Steal(Vpn, Pfn),
}

impl PagingDaemon {
    /// Creates the daemon with its clock hand at frame 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a wakeup (set by allocation paths crossing `min_freemem`).
    pub fn request_wake(&mut self) {
        self.wake_requested = true;
    }

    /// Whether a wake was requested.
    pub fn wake_requested(&self) -> bool {
        self.wake_requested
    }

    /// Clears the wake request (the engine is now servicing it).
    pub fn clear_wake(&mut self) {
        self.wake_requested = false;
    }

    /// Current clock-hand position (for tests/diagnostics).
    pub fn hand(&self) -> usize {
        self.hand
    }

    /// Deliberately warps the clock hand outside an activation — the
    /// sanitizer self-test's `WarpClockHand` mutation. Test plumbing only.
    #[doc(hidden)]
    pub fn corrupt_warp_hand(&mut self, total: usize) {
        self.hand = (self.hand + 1) % total.max(2);
    }
}

impl VmSys {
    /// Pops the next usable reactive candidate of `pid`: resident, not
    /// already being released, not an in-flight prefetch. Candidates must
    /// additionally be unreferenced since they were offered? The VINO-style
    /// contract trusts the application's choice, so only hard validity is
    /// checked.
    fn pop_reactive_candidate(&mut self, pid: Pid, now: SimTime) -> Option<(Vpn, Pfn)> {
        let q = self.reactive.get_mut(&pid)?;
        while let Some(vpn) = q.pop_front() {
            let pte = self.procs[pid.0 as usize].pt.get(vpn);
            let in_flight =
                pte.invalid_reason == Some(InvalidReason::Prefetched) && pte.arrives_at > now;
            if pte.resident() && pte.release_requested.is_none() && !in_flight {
                // Mark it sampled so the Steal re-check accepts it.
                let e = self.procs[pid.0 as usize].pt.entry(vpn);
                e.clock_sampled = true;
                let pfn = e.pfn.expect("resident checked");
                return Some((vpn, pfn));
            }
        }
        None
    }

    /// Whether the quota contract shields `pid` from a steal right now:
    /// the victim sits at or below its guaranteed share while some other
    /// process is above its own guarantee — the clock should trim that
    /// one instead. When *nobody* is above a guarantee the shield yields,
    /// so a fully-guaranteed machine can still reclaim under pressure
    /// instead of livelocking into OOM.
    fn quota_shields(&self, pid: Pid) -> bool {
        if !self.quota.any() {
            return false;
        }
        let resident = self.procs[pid.0 as usize].pt.resident_pages();
        if resident > self.quota.guaranteed(pid.0) {
            return false;
        }
        self.procs.iter().enumerate().any(|(i, p)| {
            i as u32 != pid.0 && p.pt.resident_pages() > self.quota.guaranteed(i as u32)
        })
    }

    /// Runs one daemon activation starting at `now`; returns the instant the
    /// daemon finished its work.
    ///
    /// `forced` activations (allocation found the free list empty) scan even
    /// if free memory is nominally above the low-water mark and keep going
    /// until at least one frame is freed or the scan budget is exhausted.
    pub(crate) fn pagingd_activation(&mut self, now: SimTime, forced: bool) -> SimTime {
        // Checked mode: the hand must be where the last activation parked
        // it, and the whole system must be self-consistent before the scan
        // moves anything.
        self.checked_sweep(now);
        self.stats.pagingd.activations.bump();
        if forced {
            self.stats.pagingd.forced_activations.bump();
        }
        let trim_target = self.over_limit_pid();
        let total = self.frames.len();
        if total == 0 {
            return now;
        }
        let batch = (self.tun.daemon_scan_batch as usize).min(total);
        let target_free = self.tun.target_freemem as usize;

        // Phase 1: scan under the clock hand, deciding actions.
        // The scan itself only reads PTEs; mutations happen in phase 2
        // under the victims' address-space locks.
        //
        // Like the real vhand, a non-forced activation scans its whole
        // batch regardless of how many pages it has already found — the
        // daemon samples at a *rate*, which is what makes prefetching
        // (faster consumption → more activations) so much harder on other
        // processes than ordinary demand paging.
        let mut actions: Vec<(Pid, Action)> = Vec::new();
        let mut scan_cost = SimDuration::ZERO;
        let mut would_free = 0usize;
        let mut scanned = 0usize;
        while scanned < batch {
            if forced && self.free.live() + would_free >= target_free && trim_target.is_none() {
                break;
            }
            let pfn = Pfn(self.hand_advance(total) as u32);
            scanned += 1;
            scan_cost += self.params.daemon_scan_page;
            let info = self.frames.get(pfn);
            if info.on_free_list {
                continue;
            }
            let Some((pid, vpn)) = info.owner else {
                continue;
            };
            if let Some(tpid) = trim_target {
                if pid != tpid {
                    continue;
                }
            }
            let pte = self.procs[pid.0 as usize].pt.get(vpn);
            if !pte.resident() || pte.pfn != Some(pfn) {
                continue; // stale owner info
            }
            if pte.release_requested.is_some() {
                continue; // the releaser owns this page
            }
            if pte.invalid_reason == Some(InvalidReason::Prefetched) && pte.arrives_at > now {
                continue; // prefetch still in flight
            }
            // Reactive mode: when the clock lands on a page of a process
            // that registered eviction candidates, the OS takes a page the
            // *application* chose instead — better replacement for the app,
            // but the OS still decides which process pays, so neighbours
            // are not isolated (the paper's §2.2 argument).
            if let Some(cand) = self.pop_reactive_candidate(pid, now) {
                actions.push((pid, Action::Steal(cand.0, cand.1)));
                would_free += 1;
                self.stats.pagingd.reactive_steals.bump();
                continue;
            }
            if self.tun.hardware_refbits {
                // Hardware reference bits: read-and-clear; steal pages whose
                // bit stayed clear for a whole pass. No invalidation, hence
                // no soft faults.
                if pte.hw_referenced {
                    actions.push((pid, Action::ClearRef(vpn)));
                } else if pte.clock_sampled {
                    actions.push((pid, Action::Steal(vpn, pfn)));
                    would_free += 1;
                } else {
                    actions.push((pid, Action::MarkSampled(vpn)));
                }
            } else if pte.clock_sampled {
                actions.push((pid, Action::Steal(vpn, pfn)));
                would_free += 1;
            } else if pte.valid {
                actions.push((pid, Action::Invalidate(vpn)));
            } else {
                actions.push((pid, Action::MarkSampled(vpn)));
            }
        }
        self.stats.pagingd.frames_scanned.add(scanned as u64);

        // Phase 2: apply actions per victim process, holding each victim's
        // address-space lock for the whole batch — the long holds the paper
        // blames for inflated fault times.
        let mut t = now + scan_cost;
        actions.sort_by_key(|(pid, _)| pid.0);
        let mut i = 0;
        while i < actions.len() {
            let pid = actions[i].0;
            let mut j = i;
            let mut hold = self.params.daemon_lock_overhead;
            while j < actions.len() && actions[j].0 == pid {
                hold += match actions[j].1 {
                    Action::Invalidate(_) => self.params.daemon_invalidate_page,
                    Action::ClearRef(_) => self.params.daemon_scan_page,
                    Action::MarkSampled(_) => self.params.daemon_scan_page,
                    Action::Steal(vpn, _) => {
                        let dirty = self.procs[pid.0 as usize].pt.get(vpn).dirty;
                        if dirty {
                            self.params.daemon_steal_page + self.params.daemon_writeback_init
                        } else {
                            self.params.daemon_steal_page
                        }
                    }
                };
                j += 1;
            }
            let acq = self.procs[pid.0 as usize].lock.acquire(t, hold);
            let mut stole_from_pid = false;
            for (_, action) in &actions[i..j] {
                match *action {
                    Action::Invalidate(vpn) => {
                        let e = self.procs[pid.0 as usize].pt.entry(vpn);
                        // Re-check: the owner may have touched it while we
                        // waited for the lock; sampling stands regardless
                        // (clock semantics), but skip pages that vanished.
                        if e.pfn.is_none() {
                            continue;
                        }
                        e.valid = false;
                        e.invalid_reason = Some(InvalidReason::DaemonSample);
                        e.clock_sampled = true;
                        self.procs[pid.0 as usize].tlb.invalidate(vpn);
                        self.stats.pagingd.invalidations.bump();
                    }
                    Action::ClearRef(vpn) => {
                        let e = self.procs[pid.0 as usize].pt.entry(vpn);
                        if e.pfn.is_none() {
                            continue;
                        }
                        e.hw_referenced = false;
                        e.clock_sampled = false;
                    }
                    Action::MarkSampled(vpn) => {
                        let e = self.procs[pid.0 as usize].pt.entry(vpn);
                        if e.pfn.is_none() {
                            continue;
                        }
                        e.clock_sampled = true;
                    }
                    Action::Steal(vpn, pfn) => {
                        let e = self.procs[pid.0 as usize].pt.get(vpn);
                        if e.pfn != Some(pfn) || !e.clock_sampled {
                            continue; // rescued or touched meanwhile
                        }
                        // Quota isolation: never steal below a tenant's
                        // guaranteed share while some other tenant is
                        // above its own guarantee (trim that one instead).
                        // Re-checked at apply time because residency
                        // drifts within the batch. The over-cap trim
                        // target is exempt: over cap implies over
                        // guarantee.
                        if trim_target != Some(pid) && self.quota_shields(pid) {
                            self.stats.pagingd.quota_protected.bump();
                            continue;
                        }
                        let dirty = e.dirty;
                        self.free_page(acq.end, pid, vpn, FreeSource::Daemon);
                        self.stats.pagingd.pages_stolen.bump();
                        if dirty {
                            self.stats.pagingd.writebacks.bump();
                        }
                        stole_from_pid = true;
                    }
                }
            }
            if stole_from_pid {
                // Having memory stolen is memory-system activity: the OS
                // refreshes the victim's shared page.
                self.refresh_shared(now, pid);
            }
            t = acq.end;
            i = j;
        }
        self.stats.pagingd.busy += t.since(now);
        self.note(
            now,
            EventKind::PagingdScan {
                scanned: scanned as u64,
                free: self.free.live() as u64,
            },
        );
        self.checked_park_hand();
        t
    }

    fn hand_advance(&mut self, total: usize) -> usize {
        let h = self.pagingd.hand;
        self.pagingd.hand = (h + 1) % total;
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::TouchKind;
    use crate::params::{CostParams, Tunables};
    use crate::vmsys::Backing;
    use disk::SwapConfig;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    fn vm_with(frames: usize, min_free: u64, target: u64) -> VmSys {
        let mut tun = Tunables::for_memory(frames as u64);
        tun.min_freemem = min_free;
        tun.target_freemem = target;
        tun.daemon_scan_batch = frames as u64;
        VmSys::new(frames, tun, CostParams::default(), SwapConfig::test_array())
    }

    #[test]
    fn idle_daemon_does_nothing() {
        let mut vm = vm_with(64, 4, 8);
        assert!(!vm.pagingd_needed());
        assert!(vm.service_pagingd(t(1)).is_none());
        // service_pagingd bails out before scanning when memory is ample.
        assert_eq!(vm.stats().pagingd.frames_scanned.get(), 0);
    }

    #[test]
    fn first_pass_samples_second_pass_steals() {
        let mut vm = vm_with(32, 8, 12);
        let pid = vm.add_process(false);
        let r = vm.map_region(pid, 32, Backing::ZeroFill, false);
        let mut now = t(1);
        // Fill until below min_freemem.
        for i in 0..28 {
            now = vm.touch(now, pid, r.start.offset(i), false).done_at;
        }
        assert!(vm.pagingd_needed());
        let end1 = vm.pagingd_activation(now, false);
        assert!(vm.stats().pagingd.invalidations.get() > 0, "pass 1 samples");
        let stolen_after_1 = vm.stats().pagingd.pages_stolen.get();
        let _end2 = vm.pagingd_activation(end1, false);
        assert!(
            vm.stats().pagingd.pages_stolen.get() > stolen_after_1,
            "pass 2 steals unreferenced pages"
        );
    }

    #[test]
    fn touched_pages_survive_the_clock() {
        let mut vm = vm_with(32, 8, 10);
        let pid = vm.add_process(false);
        let r = vm.map_region(pid, 32, Backing::ZeroFill, false);
        let mut now = t(1);
        for i in 0..28 {
            now = vm.touch(now, pid, r.start.offset(i), false).done_at;
        }
        let end1 = vm.pagingd_activation(now, false);
        // Re-touch page 0 (soft fault revalidates and clears the sample).
        let res = vm.touch(end1, pid, r.start, false);
        assert_eq!(res.kind, TouchKind::SoftFaultDaemon);
        vm.pagingd_activation(res.done_at, false);
        // Page 0 must still be resident.
        assert!(vm.touch(t(500), pid, r.start, false).kind != TouchKind::HardFault);
    }

    #[test]
    fn invalidation_soft_faults_are_counted() {
        let mut vm = vm_with(32, 8, 10);
        let pid = vm.add_process(false);
        let r = vm.map_region(pid, 32, Backing::ZeroFill, false);
        let mut now = t(1);
        for i in 0..28 {
            now = vm.touch(now, pid, r.start.offset(i), false).done_at;
        }
        let end = vm.pagingd_activation(now, false);
        let mut soft = 0;
        let mut cur = end;
        for i in 0..28 {
            let res = vm.touch(cur, pid, r.start.offset(i), false);
            cur = res.done_at;
            if res.kind == TouchKind::SoftFaultDaemon {
                soft += 1;
            }
        }
        assert_eq!(
            soft,
            vm.stats().proc(pid.0 as usize).soft_faults_daemon.get()
        );
        assert!(soft > 0);
    }

    #[test]
    fn daemon_skips_release_pending_pages() {
        let mut vm = vm_with(32, 31, 32); // daemon always "needed"
        let pid = vm.add_process(true);
        let r = vm.map_region(pid, 8, Backing::SwapPrefilled, true);
        let mut now = t(1);
        for i in 0..4 {
            now = vm.touch(now, pid, r.start.offset(i), false).done_at;
        }
        vm.release(now, pid, &[r.start]);
        vm.pagingd_activation(now, false);
        vm.pagingd_activation(now + SimDuration::from_millis(10), false);
        // The released page must have been left to the releaser: it was
        // never stolen by the daemon.
        assert_eq!(vm.stats().freed.freed_by_daemon.get(), {
            // Pages 1..4 may be stolen, page 0 must not be (release pending).
            let stolen = vm.stats().pagingd.pages_stolen.get();
            assert!(stolen <= 3, "stole {stolen}, including a released page?");
            stolen
        });
    }

    #[test]
    fn daemon_holds_victim_lock() {
        let mut vm = vm_with(32, 8, 12);
        let pid = vm.add_process(false);
        let r = vm.map_region(pid, 32, Backing::ZeroFill, false);
        let mut now = t(1);
        for i in 0..28 {
            now = vm.touch(now, pid, r.start.offset(i), false).done_at;
        }
        let before = vm.lock_stats(pid).acquisitions.get();
        vm.pagingd_activation(now, false);
        assert!(vm.lock_stats(pid).acquisitions.get() > before);
        assert!(vm.lock_stats(pid).total_hold > SimDuration::ZERO);
    }

    #[test]
    fn maxrss_trim_targets_over_limit_process() {
        let mut vm = vm_with(64, 2, 4);
        let pid = vm.add_process(false);
        let other = vm.add_process(false);
        let r = vm.map_region(pid, 40, Backing::ZeroFill, false);
        let ro = vm.map_region(other, 8, Backing::ZeroFill, false);
        let mut now = t(1);
        for i in 0..8 {
            now = vm.touch(now, other, ro.start.offset(i), false).done_at;
        }
        for i in 0..30 {
            now = vm.touch(now, pid, r.start.offset(i), false).done_at;
        }
        // Lower maxrss below the hog's RSS.
        vm.tun.maxrss = 16;
        assert_eq!(vm.over_limit_pid(), Some(pid));
        let end = vm.pagingd_activation(now, false);
        vm.pagingd_activation(end, false);
        // Only the hog lost pages.
        assert!(vm.stats().proc(pid.0 as usize).pages_stolen.get() > 0);
        assert_eq!(vm.stats().proc(other.0 as usize).pages_stolen.get(), 0);
    }

    #[test]
    fn activation_count_matches_service_calls() {
        let mut vm = vm_with(32, 8, 10);
        let pid = vm.add_process(false);
        let r = vm.map_region(pid, 32, Backing::ZeroFill, false);
        let mut now = t(1);
        for i in 0..28 {
            now = vm.touch(now, pid, r.start.offset(i), false).done_at;
        }
        let a0 = vm.stats().pagingd.activations.get();
        let next = vm.service_pagingd(now);
        assert_eq!(vm.stats().pagingd.activations.get(), a0 + 1);
        // Pressure persists (pass 1 only samples), so a next wake is due.
        assert!(next.is_some());
    }
}

#[cfg(test)]
mod hw_refbit_tests {
    use super::*;
    use crate::outcome::TouchKind;
    use crate::params::{CostParams, Tunables};
    use crate::vmsys::Backing;
    use disk::SwapConfig;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    fn vm_hw(frames: usize) -> VmSys {
        let mut tun = Tunables::for_memory(frames as u64);
        tun.min_freemem = 8;
        tun.target_freemem = 12;
        tun.daemon_scan_batch = frames as u64;
        tun.hardware_refbits = true;
        VmSys::new(frames, tun, CostParams::default(), SwapConfig::test_array())
    }

    #[test]
    fn hw_sampling_causes_no_soft_faults() {
        let mut vm = vm_hw(32);
        let pid = vm.add_process(false);
        let r = vm.map_region(pid, 32, Backing::ZeroFill, false);
        let mut now = t(1);
        for i in 0..28 {
            now = vm.touch(now, pid, r.start.offset(i), false).done_at;
        }
        let end = vm.pagingd_activation(now, false);
        // A re-touch after the sampling pass is a plain hit/TLB-miss, never
        // a soft fault: the daemon only cleared the reference bit.
        let res = vm.touch(end, pid, r.start, false);
        assert!(
            matches!(res.kind, TouchKind::Hit | TouchKind::TlbMiss),
            "unexpected {:?}",
            res.kind
        );
        assert_eq!(vm.stats().proc(pid.0 as usize).soft_faults_daemon.get(), 0);
        assert_eq!(vm.stats().pagingd.invalidations.get(), 0);
    }

    #[test]
    fn hw_mode_still_steals_unreferenced_pages() {
        let mut vm = vm_hw(32);
        let pid = vm.add_process(false);
        let r = vm.map_region(pid, 32, Backing::ZeroFill, false);
        let mut now = t(1);
        for i in 0..28 {
            now = vm.touch(now, pid, r.start.offset(i), false).done_at;
        }
        // Pass 1 clears bits, pass 2 marks sampled, pass 3 steals.
        let e1 = vm.pagingd_activation(now, false);
        let e2 = vm.pagingd_activation(e1, false);
        vm.pagingd_activation(e2, false);
        assert!(
            vm.stats().pagingd.pages_stolen.get() > 0,
            "hardware mode must still reclaim"
        );
    }

    #[test]
    fn hw_mode_spares_retouch_pages() {
        let mut vm = vm_hw(32);
        let pid = vm.add_process(false);
        let r = vm.map_region(pid, 32, Backing::ZeroFill, false);
        let mut now = t(1);
        for i in 0..28 {
            now = vm.touch(now, pid, r.start.offset(i), false).done_at;
        }
        let e1 = vm.pagingd_activation(now, false);
        // Re-touch page 0 between passes: its bit is set again.
        let res = vm.touch(e1, pid, r.start, false);
        let e2 = vm.pagingd_activation(res.done_at, false);
        vm.pagingd_activation(e2, false);
        assert!(
            vm.touch(t(900), pid, r.start, false).kind != TouchKind::ZeroFill,
            "recently referenced page survived the clock"
        );
    }
}
