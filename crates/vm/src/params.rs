//! Cost parameters and system tunables.
//!
//! [`CostParams`] holds the CPU-time costs of the VM primitives, calibrated
//! to a ~180 MHz MIPS R10000 running IRIX 6.5 (the paper's machine).
//! [`Tunables`] holds the IRIX-style policy knobs the paper discusses
//! (`maxrss`, `min_freemem`, daemon batching) plus ablation switches this
//! reproduction adds.

use sim_core::SimDuration;

/// CPU-time costs of VM primitives.
#[derive(Clone, Copy, Debug)]
pub struct CostParams {
    /// Software TLB refill (MIPS has software-managed TLBs).
    pub tlb_refill: SimDuration,
    /// Revalidating a page the paging daemon invalidated (a soft fault):
    /// trap entry/exit plus PTE fixup.
    pub soft_fault: SimDuration,
    /// Lock hold during a soft fault.
    pub soft_fault_lock: SimDuration,
    /// Validating a prefetched-but-not-yet-referenced page on first touch.
    pub prefetch_validate: SimDuration,
    /// Reclaiming one's own page from the free list (no I/O).
    pub rescue_fault: SimDuration,
    /// Lock hold during a rescue.
    pub rescue_lock: SimDuration,
    /// CPU portion of a hard fault: trap, frame allocation, I/O initiation.
    pub hard_fault_setup: SimDuration,
    /// Lock hold during hard-fault setup.
    pub hard_fault_lock: SimDuration,
    /// CPU portion after I/O completion: mapping, trap return.
    pub hard_fault_finish: SimDuration,
    /// Zero-fill minor fault (first touch of anonymous memory): trap plus
    /// clearing a 16 KB page.
    pub zero_fill_fault: SimDuration,
    /// Syscall overhead of one prefetch request into the PagingDirected PM.
    pub pm_prefetch_call: SimDuration,
    /// Syscall overhead of one release request into the PagingDirected PM.
    pub pm_release_call: SimDuration,
    /// Paging daemon: examining one frame during a clock pass.
    pub daemon_scan_page: SimDuration,
    /// Paging daemon: invalidating one referenced page (reference sampling).
    pub daemon_invalidate_page: SimDuration,
    /// Paging daemon: stealing one page (unmap, free-list insertion).
    pub daemon_steal_page: SimDuration,
    /// Paging daemon: initiating writeback of one dirty page.
    pub daemon_writeback_init: SimDuration,
    /// Paging daemon: acquiring/releasing one victim's address-space lock.
    pub daemon_lock_overhead: SimDuration,
    /// Releaser: freeing one pre-identified page. The releaser is
    /// specialized, so this is cheaper than `daemon_steal_page` plus the
    /// scan costs the daemon pays to find a victim.
    pub releaser_free_page: SimDuration,
    /// Releaser: skipping a request whose page was re-referenced or is
    /// non-resident.
    pub releaser_skip_page: SimDuration,
    /// Releaser: acquiring/releasing the address-space lock per batch.
    pub releaser_lock_overhead: SimDuration,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams::origin200()
    }
}

impl CostParams {
    /// Costs calibrated to the paper's SGI Origin 200 (180 MHz R10000).
    pub fn origin200() -> Self {
        CostParams {
            tlb_refill: SimDuration::from_nanos(500),
            soft_fault: SimDuration::from_micros(7),
            soft_fault_lock: SimDuration::from_micros(4),
            prefetch_validate: SimDuration::from_micros(3),
            rescue_fault: SimDuration::from_micros(14),
            rescue_lock: SimDuration::from_micros(8),
            hard_fault_setup: SimDuration::from_micros(20),
            hard_fault_lock: SimDuration::from_micros(10),
            hard_fault_finish: SimDuration::from_micros(8),
            zero_fill_fault: SimDuration::from_micros(28),
            pm_prefetch_call: SimDuration::from_micros(6),
            pm_release_call: SimDuration::from_micros(5),
            daemon_scan_page: SimDuration::from_micros(2),
            daemon_invalidate_page: SimDuration::from_micros(3),
            daemon_steal_page: SimDuration::from_micros(12),
            daemon_writeback_init: SimDuration::from_micros(5),
            daemon_lock_overhead: SimDuration::from_micros(6),
            releaser_free_page: SimDuration::from_micros(6),
            releaser_skip_page: SimDuration::from_micros(1),
            releaser_lock_overhead: SimDuration::from_micros(4),
        }
    }
}

/// Policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct Tunables {
    /// Maximum resident set size (pages) any process may hold (`maxrss`).
    pub maxrss: u64,
    /// Free-memory low-water mark (pages): below this, the paging daemon
    /// runs (`min_freemem`).
    pub min_freemem: u64,
    /// The paging daemon keeps working until free memory reaches this
    /// high-water target (pages).
    pub target_freemem: u64,
    /// Maximum frames the paging daemon examines per activation.
    pub daemon_scan_batch: u64,
    /// Pages the releaser frees per lock acquisition.
    pub releaser_batch: u64,
    /// Interval between paging-daemon activations while memory stays low.
    pub daemon_period: SimDuration,
    /// Delay between a release request arriving and the releaser servicing
    /// its queue (models daemon wakeup latency).
    pub releaser_delay: SimDuration,
    /// Whether freed pages keep their identity and can be rescued
    /// (ablation; the paper's system always rescues).
    pub rescue_enabled: bool,
    /// Whether *explicitly released* pages stay rescuable (the paper's
    /// releaser puts them at the free-list tail precisely so they can be
    /// rescued). `false` models `madvise(MADV_DONTNEED)`-style release,
    /// where a premature release always costs a fresh page-in.
    pub released_pages_rescuable: bool,
    /// Whether prefetch requests are discarded when free memory is at or
    /// below `min_freemem` (paper behaviour: they are).
    pub prefetch_discard_when_low: bool,
    /// Whether the shared page's usage/limit words are recomputed on every
    /// read instead of only on memory activity (ablation; the paper uses
    /// lazy updates).
    pub immediate_limit_updates: bool,
    /// Whether the hardware provides reference bits. The paper's MIPS
    /// machine does not — the daemon samples by invalidation, producing
    /// soft faults. With hardware bits the daemon reads and clears a bit
    /// instead (§6: "It would be interesting to see if these benefits
    /// still occur on a system with hardware reference bits").
    pub hardware_refbits: bool,
    /// §3.1.1's unexplored alternative: "notify interested applications if
    /// conditions change by more than a set threshold, rather than waiting
    /// for memory activity to occur." When set, every PM process's shared
    /// page is refreshed whenever global free memory moves by more than
    /// this many pages since the last broadcast.
    pub shared_update_threshold: Option<u64>,
}

impl Tunables {
    /// Defaults matching the paper's configuration for a machine with
    /// `total_frames` user-available frames.
    pub fn for_memory(total_frames: u64) -> Self {
        Tunables {
            maxrss: total_frames,
            min_freemem: (total_frames / 40).max(32),
            target_freemem: (total_frames / 20).max(64),
            daemon_scan_batch: (total_frames / 32).max(64),
            releaser_batch: 16,
            daemon_period: SimDuration::from_millis(5),
            releaser_delay: SimDuration::from_micros(200),
            rescue_enabled: true,
            released_pages_rescuable: true,
            prefetch_discard_when_low: true,
            immediate_limit_updates: false,
            hardware_refbits: false,
            shared_update_threshold: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = CostParams::default();
        assert!(c.soft_fault < c.hard_fault_setup + c.hard_fault_finish);
        assert!(c.releaser_free_page < c.daemon_steal_page);
        assert!(c.tlb_refill < c.soft_fault);
    }

    #[test]
    fn tunables_scale_with_memory() {
        let t = Tunables::for_memory(4800);
        assert_eq!(t.maxrss, 4800);
        assert!(t.min_freemem >= 32);
        assert!(t.target_freemem > t.min_freemem);
        assert!(t.daemon_scan_batch >= 64);
    }

    #[test]
    fn tiny_memory_clamps() {
        let t = Tunables::for_memory(100);
        assert_eq!(t.min_freemem, 32);
        assert_eq!(t.target_freemem, 64);
        assert_eq!(t.daemon_scan_batch, 64);
    }
}
