//! Policy modules.
//!
//! IRIX 6.5 lets a process connect a *policy module* (PM) to any range of
//! its virtual address space to select memory-management policies. The paper
//! defines one new PM — **PagingDirected** — that accepts user-level
//! prefetch and release operations for the attached ranges and exports the
//! shared information page.
//!
//! This module models the PM attachment bookkeeping; the PagingDirected
//! behaviour itself lives in [`crate::vmsys`] (operations) and
//! [`crate::shared_page`] (the information page).

use crate::addr::{PageRange, Vpn};
use crate::shared_page::SharedPage;

/// The kind of policy module governing a range.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PolicyKind {
    /// The stock IRIX default policy (global replacement, no user paging
    /// directives).
    Default,
    /// The paper's PagingDirected PM.
    PagingDirected,
}

/// The PagingDirected policy module instance owned by one process.
#[derive(Debug, Default)]
pub struct PagingDirected {
    /// The shared information page the OS maintains for the process.
    pub shared: SharedPage,
    attached: Vec<PageRange>,
}

impl PagingDirected {
    /// Creates the PM with its (empty) shared page.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches the PM to a range: residency bits for the range are cleared
    /// and user paging directives become legal for those pages.
    pub fn attach(&mut self, range: PageRange) {
        self.shared.attach(range);
        self.attached.push(range);
    }

    /// Whether `vpn` is governed by this PM.
    pub fn governs(&self, vpn: Vpn) -> bool {
        self.attached.iter().any(|r| r.contains(vpn))
    }

    /// The attached ranges.
    pub fn ranges(&self) -> &[PageRange] {
        &self.attached
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attach_and_governs() {
        let mut pm = PagingDirected::new();
        pm.attach(PageRange::new(Vpn(10), 5));
        assert!(pm.governs(Vpn(12)));
        assert!(!pm.governs(Vpn(20)));
        assert_eq!(pm.ranges().len(), 1);
    }

    #[test]
    fn attach_clears_bits() {
        let mut pm = PagingDirected::new();
        pm.attach(PageRange::new(Vpn(0), 8));
        assert!(!pm.shared.is_resident(Vpn(0)));
    }
}
