//! Graded memory-pressure monitor: the sensor half of the fleet
//! overload-control loop.
//!
//! Sampled periodically by the engine (`Ev::Pressure`), the monitor
//! grades the machine into a [`PressureLevel`] from three deterministic
//! signals, all already maintained by the VM:
//!
//! * **free-memory headroom and slope** — `free_pages()` against the
//!   paging daemon's `min_freemem`/`target_freemem` watermarks, and how
//!   fast free memory fell since the previous sample;
//! * **steal rate** — the delta of `pagingd.pages_stolen` (the daemon
//!   actively reclaiming is the paper's definition of memory pressure);
//! * **quota-shield hit rate** — the delta of `pagingd.quota_protected`
//!   (steals deflected off guaranteed shares mean the burst pool is
//!   exhausted and tenants are eating each other's slack);
//! * **forced activations** — the delta of `pagingd.forced_activations`
//!   (an allocation found the free list *empty*; the inline daemon
//!   refills to target before the next sample, so the counter delta is
//!   the only trace the starvation leaves).
//!
//! Grading is a simple severity score so every threshold is auditable
//! (DESIGN.md §16): at or under `min_freemem` or any forced activation
//! since the last sample is immediately
//! [`PressureLevel::Emergency`]; otherwise one point each for being
//! under `target_freemem`, for active stealing, and for a falling
//! free-list that would cross `min_freemem` within two more samples (or
//! quota shields firing). Level changes are emitted as typed
//! [`EventKind::PressureShift`] events on the VM flight recorder.
//!
//! The monitor is a pure function of VM state plus its own last sample —
//! no wall clock, no randomness — so fleet runs stay bit-reproducible.

use sim_core::obs::EventKind;
use sim_core::{PressureLevel, SimTime};

use crate::vmsys::VmSys;

/// Free-memory slope / steal-rate / shield-rate pressure sensor.
///
/// Create once per run and call [`PressureMonitor::sample`] on a fixed
/// period; the slope and rate signals are per-period deltas, so the
/// grading is independent of absolute counter values.
#[derive(Clone, Debug, Default)]
pub struct PressureMonitor {
    level: PressureLevel,
    last_free: Option<u64>,
    last_stolen: u64,
    last_shielded: u64,
    last_forced: u64,
    shifts: u64,
}

impl PressureMonitor {
    /// A monitor starting at [`PressureLevel::Normal`] with no history.
    pub fn new() -> Self {
        PressureMonitor::default()
    }

    /// The level graded by the most recent sample.
    pub fn level(&self) -> PressureLevel {
        self.level
    }

    /// Number of level changes observed so far.
    pub fn shifts(&self) -> u64 {
        self.shifts
    }

    /// Grades the machine now, updates the slope/rate history, and emits
    /// a [`EventKind::PressureShift`] on the VM recorder if the level
    /// changed. Returns the new level.
    pub fn sample(&mut self, now: SimTime, vm: &mut VmSys) -> PressureLevel {
        let free = vm.free_pages();
        let stolen = vm.stats().pagingd.pages_stolen.get();
        let shielded = vm.stats().pagingd.quota_protected.get();
        let forced = vm.stats().pagingd.forced_activations.get();
        let min = vm.tunables().min_freemem;
        let target = vm.tunables().target_freemem;

        // Positive slope = free memory falling, in pages per sample.
        let slope = self.last_free.map_or(0, |last| last.saturating_sub(free));
        let stolen_delta = stolen - self.last_stolen;
        let shielded_delta = shielded - self.last_shielded;
        let forced_delta = forced - self.last_forced;
        self.last_free = Some(free);
        self.last_stolen = stolen;
        self.last_shielded = shielded;
        self.last_forced = forced;

        // A forced activation means an allocation found the free list
        // *empty* since the last sample. Sampled free memory can look
        // healthy moments later (the inline daemon refills to target), so
        // this delta is the only signal that survives the refill — grade
        // it straight to Emergency.
        let to = if free <= min || forced_delta > 0 {
            PressureLevel::Emergency
        } else {
            // Would the current slope cross the wall within two more
            // samples?
            let falling_fast = slope > 0 && free.saturating_sub(slope * 2) <= min;
            let score = u32::from(free < target)
                + u32::from(stolen_delta > 0)
                + u32::from(falling_fast || shielded_delta > 0);
            match score {
                0 => PressureLevel::Normal,
                1 => PressureLevel::Elevated,
                2 => PressureLevel::Critical,
                _ => PressureLevel::Emergency,
            }
        };

        if to != self.level {
            let from = self.level;
            self.level = to;
            self.shifts += 1;
            vm.obs.emit(now, EventKind::PressureShift { from, to });
        }
        to
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Vpn;
    use crate::vmsys::{Backing, VmSys};

    // 600 frames -> min_freemem 32, target_freemem 64 (for_memory).
    fn small_vm() -> VmSys {
        VmSys::with_defaults(600)
    }

    /// Touches `n` distinct pages so the free list drains by `n` frames.
    fn occupy(vm: &mut VmSys, n: u64) -> Vpn {
        let pid = vm.add_process(false);
        let r = vm.map_region(pid, n, Backing::ZeroFill, false);
        for i in 0..n {
            vm.touch(SimTime::ZERO, pid, r.start.offset(i), true);
        }
        r.start
    }

    #[test]
    fn calm_machine_is_normal() {
        let mut vm = small_vm();
        let mut m = PressureMonitor::new();
        assert_eq!(m.sample(SimTime::ZERO, &mut vm), PressureLevel::Normal);
        assert_eq!(m.shifts(), 0);
    }

    #[test]
    fn at_the_wall_is_emergency_and_emits_shift() {
        let mut vm = small_vm();
        let mut m = PressureMonitor::new();
        vm.set_trace_enabled(true);
        m.sample(SimTime::ZERO, &mut vm);
        // Drain the free list to the min_freemem wall.
        let take = vm.free_pages() - vm.tunables().min_freemem;
        occupy(&mut vm, take);
        assert_eq!(
            m.sample(SimTime::from_nanos(1), &mut vm),
            PressureLevel::Emergency
        );
        assert_eq!(m.shifts(), 1);
        assert_eq!(vm.recorder().count("pressure_shift"), 1);
    }

    #[test]
    fn below_target_without_stealing_is_elevated() {
        let mut vm = small_vm();
        let mut m = PressureMonitor::new();
        m.sample(SimTime::ZERO, &mut vm);
        // Land between min (32) and target (64): one severity point, and
        // the slope cannot cross the wall within two samples from here.
        let take = vm.free_pages() - 50;
        occupy(&mut vm, take);
        m.sample(SimTime::from_nanos(1), &mut vm);
        // Second sample with no further movement: slope flat, no steals.
        assert_eq!(
            m.sample(SimTime::from_nanos(2), &mut vm),
            PressureLevel::Elevated
        );
    }

    #[test]
    fn level_is_sticky_between_changes() {
        let mut vm = small_vm();
        let mut m = PressureMonitor::new();
        for i in 0..3 {
            m.sample(SimTime::from_nanos(i), &mut vm);
        }
        assert_eq!(m.shifts(), 0);
        assert_eq!(m.level(), PressureLevel::Normal);
    }
}
