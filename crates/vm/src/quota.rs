//! Per-tenant memory quotas: guaranteed share + burstable slack.
//!
//! The paper's Eq. 1 gives every process the same global view: its upper
//! limit is `min(maxrss, usage + free - min_freemem)`. That is fine for
//! one cooperative job but gives a byzantine tenant the whole machine to
//! graze on. [`QuotaSet`] generalizes the limit into a per-tenant
//! contract:
//!
//! * a **guaranteed** share — frames the tenant can always hold; the
//!   paging daemon never steals below it while any other tenant is above
//!   its own guarantee;
//! * a **burstable** slack — frames above the guarantee the tenant may
//!   use while the machine has room, *rented against good behaviour*:
//!   every hint that wastes kernel work (a cancelled release, a rescued
//!   release, a redundant prefetch) debits the slack, and every hint that
//!   does its job (a validated prefetch, a release that actually freed a
//!   frame) credits it back.
//!
//! The effective per-tenant cap is
//! `min(maxrss, guaranteed + burst - debt)`; debt saturates at `burst`,
//! so the cap can never drop below the guarantee. Tenants without a
//! registered quota keep the stock Eq. 1 behaviour, and a [`QuotaSet`]
//! with no registrations is a complete no-op — existing single-tenant
//! runs are bit-identical.
//!
//! Independently of quotas, the set keeps an exact per-tenant **charged**
//! frame count, incremented/decremented at the same sites that map/unmap
//! resident pages. Checked mode asserts it equals each page table's
//! resident count — the conservation property the adversary tests lean
//! on.

use std::collections::BTreeMap;

/// One tenant's memory contract (pages).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TenantQuota {
    /// Frames the tenant can always hold (never stolen below this while
    /// another tenant is above its own guarantee).
    pub guaranteed: u64,
    /// Burstable slack above the guarantee, debited by wasteful hints.
    pub burst: u64,
}

impl TenantQuota {
    /// A quota of `guaranteed` pages plus `burst` pages of slack.
    pub fn new(guaranteed: u64, burst: u64) -> Self {
        TenantQuota { guaranteed, burst }
    }

    /// The cap with zero debt: `guaranteed + burst`.
    pub fn ceiling(&self) -> u64 {
        self.guaranteed + self.burst
    }
}

/// The per-machine registry of tenant quotas plus the frame-charge and
/// hint-debt ledgers (see module docs). Deterministic by construction:
/// all state lives in `BTreeMap`s keyed by pid.
#[derive(Clone, Debug, Default)]
pub struct QuotaSet {
    quotas: BTreeMap<u32, TenantQuota>,
    /// Burst slack consumed by wasteful hints, per tenant (≤ burst).
    debt: BTreeMap<u32, u64>,
    /// Exact resident-frame count per process (kept for *all* pids, not
    /// just quota'd tenants, so conservation is checkable machine-wide).
    charged: BTreeMap<u32, u64>,
    debits: u64,
    credits: u64,
}

impl QuotaSet {
    /// An empty set (every operation a no-op until a quota is registered).
    pub fn new() -> Self {
        QuotaSet::default()
    }

    /// Whether any tenant has a registered quota.
    pub fn any(&self) -> bool {
        !self.quotas.is_empty()
    }

    /// Registers (or replaces) `pid`'s quota.
    pub fn set(&mut self, pid: u32, quota: TenantQuota) {
        self.quotas.insert(pid, quota);
    }

    /// The quota registered for `pid`, if any.
    pub fn quota(&self, pid: u32) -> Option<TenantQuota> {
        self.quotas.get(&pid).copied()
    }

    /// `pid`'s guaranteed share (0 for tenants without a quota).
    pub fn guaranteed(&self, pid: u32) -> u64 {
        self.quotas.get(&pid).map_or(0, |q| q.guaranteed)
    }

    /// `pid`'s current hint debt against its burst slack.
    pub fn debt(&self, pid: u32) -> u64 {
        self.debt.get(&pid).copied().unwrap_or(0)
    }

    /// The effective per-tenant cap: `min(maxrss, guaranteed + burst -
    /// debt)` for quota'd tenants, `maxrss` otherwise. Debt saturates at
    /// `burst`, so the cap never drops below the guarantee.
    pub fn cap(&self, pid: u32, maxrss: u64) -> u64 {
        match self.quotas.get(&pid) {
            None => maxrss,
            Some(q) => maxrss.min(q.guaranteed + q.burst - self.debt(pid)),
        }
    }

    /// Debits `pages` of burst slack for a wasteful hint (saturating at
    /// the tenant's burst). No-op for tenants without a quota.
    pub fn debit(&mut self, pid: u32, pages: u64) {
        let Some(q) = self.quotas.get(&pid) else {
            return;
        };
        let d = self.debt.entry(pid).or_insert(0);
        *d = (*d + pages).min(q.burst);
        self.debits += pages;
    }

    /// Credits `pages` of burst slack back for a hint that did its job
    /// (saturating at zero). No-op for tenants without a quota.
    pub fn credit(&mut self, pid: u32, pages: u64) {
        if !self.quotas.contains_key(&pid) {
            return;
        }
        let d = self.debt.entry(pid).or_insert(0);
        *d = d.saturating_sub(pages);
        self.credits += pages;
    }

    /// Records one frame becoming resident for `pid`.
    pub fn charge(&mut self, pid: u32) {
        *self.charged.entry(pid).or_insert(0) += 1;
    }

    /// Records one frame leaving residency for `pid`.
    pub fn uncharge(&mut self, pid: u32) {
        let c = self.charged.entry(pid).or_insert(0);
        debug_assert!(*c > 0, "uncharge below zero for pid {pid}");
        *c = c.saturating_sub(1);
    }

    /// Exact frames currently charged to `pid`.
    pub fn charged(&self, pid: u32) -> u64 {
        self.charged.get(&pid).copied().unwrap_or(0)
    }

    /// Sum of charged frames across every process.
    pub fn total_charged(&self) -> u64 {
        self.charged.values().sum()
    }

    /// Sum of all registered guarantees.
    pub fn total_guaranteed(&self) -> u64 {
        self.quotas.values().map(|q| q.guaranteed).sum()
    }

    /// Total debit events applied (diagnostics).
    pub fn total_debits(&self) -> u64 {
        self.debits
    }

    /// Total credit events applied (diagnostics).
    pub fn total_credits(&self) -> u64 {
        self.credits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_is_transparent() {
        let q = QuotaSet::new();
        assert!(!q.any());
        assert_eq!(q.cap(0, 1000), 1000);
        assert_eq!(q.guaranteed(0), 0);
        assert_eq!(q.debt(0), 0);
    }

    #[test]
    fn debit_and_credit_never_leave_the_burst_band() {
        let mut q = QuotaSet::new();
        q.set(1, TenantQuota::new(100, 40));
        assert_eq!(q.cap(1, 1000), 140);
        q.debit(1, 25);
        assert_eq!(q.cap(1, 1000), 115);
        // Debt saturates at burst: the cap never dips below the guarantee.
        q.debit(1, 1000);
        assert_eq!(q.debt(1), 40);
        assert_eq!(q.cap(1, 1000), 100);
        // Credits restore slack, saturating at zero debt.
        q.credit(1, 10);
        assert_eq!(q.cap(1, 1000), 110);
        q.credit(1, 1000);
        assert_eq!(q.debt(1), 0);
        assert_eq!(q.cap(1, 1000), 140);
        assert_eq!(q.total_debits(), 1025);
        assert_eq!(q.total_credits(), 1010);
    }

    #[test]
    fn cap_is_still_bounded_by_maxrss() {
        let mut q = QuotaSet::new();
        q.set(0, TenantQuota::new(50, 500));
        assert_eq!(q.cap(0, 64), 64, "maxrss still binds");
        assert_eq!(q.cap(0, 10_000), 550);
    }

    #[test]
    fn debits_on_unquotad_tenants_are_noops() {
        let mut q = QuotaSet::new();
        q.set(1, TenantQuota::new(10, 10));
        q.debit(0, 5);
        q.credit(0, 5);
        assert_eq!(q.debt(0), 0);
        assert_eq!(q.total_debits(), 0);
    }

    #[test]
    fn charge_ledger_tracks_all_pids() {
        let mut q = QuotaSet::new();
        q.charge(0);
        q.charge(0);
        q.charge(3);
        q.uncharge(0);
        assert_eq!(q.charged(0), 1);
        assert_eq!(q.charged(3), 1);
        assert_eq!(q.charged(7), 0);
        assert_eq!(q.total_charged(), 2);
    }

    #[test]
    fn totals_sum_guarantees() {
        let mut q = QuotaSet::new();
        q.set(0, TenantQuota::new(10, 5));
        q.set(1, TenantQuota::new(20, 0));
        assert_eq!(q.total_guaranteed(), 30);
    }
}
