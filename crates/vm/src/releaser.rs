//! The releaser daemon.
//!
//! The paper's new kernel daemon: it "functions similarly to the paging
//! daemon, but is specialized to reclaim only the pages indicated by the
//! application". Requests arrive from the PagingDirected PM; the releaser
//!
//! 1. checks the bit vector / PTE to make sure the page has **not been
//!    referenced again** since the request (a re-reference cancels it);
//! 2. performs all actions needed to free the page, including writing back
//!    dirty pages;
//! 3. places freed pages **at the end of the free list**, so pages released
//!    too early can still be rescued.
//!
//! Compared to the paging daemon it "typically operates on smaller blocks
//! of pages, so the locks can be held for much shorter periods of time",
//! and it does less work per page — both properties are reflected in the
//! cost model.

use std::collections::VecDeque;

use sim_core::obs::EventKind;
use sim_core::SimTime;

use crate::addr::{Pid, Vpn};
use crate::frame::FreeSource;
use crate::pagetable::InvalidReason;
use crate::vmsys::VmSys;

/// A queued release request for one page.
#[derive(Clone, Copy, Debug)]
pub struct ReleaseRequest {
    /// Owning process.
    pub pid: Pid,
    /// Page to free.
    pub vpn: Vpn,
    /// When the request was made (re-references after this cancel it).
    pub requested_at: SimTime,
}

/// Persistent releaser state: the work queue.
#[derive(Clone, Debug, Default)]
pub struct Releaser {
    queue: VecDeque<ReleaseRequest>,
}

impl Releaser {
    /// Creates an idle releaser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues one page.
    pub fn enqueue(&mut self, pid: Pid, vpn: Vpn, requested_at: SimTime) {
        self.queue.push_back(ReleaseRequest {
            pid,
            vpn,
            requested_at,
        });
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Queue depth.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Drops all queued requests (crash reconciliation), returning how
    /// many were orphaned.
    pub fn clear(&mut self) -> usize {
        let n = self.queue.len();
        self.queue.clear();
        n
    }
}

/// Maximum pages the releaser processes per activation; more work yields a
/// re-wake so one activation can't run unboundedly long.
const MAX_PER_ACTIVATION: usize = 512;

impl VmSys {
    /// Runs one releaser activation at `now`.
    ///
    /// Returns `Some(next_wake)` if work remains queued.
    pub fn service_releaser(&mut self, now: SimTime) -> Option<SimTime> {
        if self.releaser.queue.is_empty() {
            return None;
        }
        self.checked_sweep(now);
        self.stats.releaser.activations.bump();
        let batch = self.tun.releaser_batch.max(1) as usize;
        let mut t = now;
        let mut processed = 0;

        while processed < MAX_PER_ACTIVATION {
            // Take a batch of requests for one process (FIFO order, grouped
            // so the lock is taken once per small batch).
            let Some(&first) = self.releaser.queue.front() else {
                break;
            };
            let pid = first.pid;
            let mut chunk: Vec<ReleaseRequest> = Vec::with_capacity(batch);
            while chunk.len() < batch {
                match self.releaser.queue.front() {
                    Some(r) if r.pid == pid => {
                        chunk.push(*r);
                        self.releaser.queue.pop_front();
                    }
                    _ => break,
                }
            }
            processed += chunk.len();

            // Decide per page, then hold the lock once for the chunk.
            let mut hold = self.params.releaser_lock_overhead;
            let mut decisions: Vec<(ReleaseRequest, bool)> = Vec::with_capacity(chunk.len());
            for req in chunk {
                let pte = self.procs[pid.0 as usize].pt.get(req.vpn);
                // The request stands only if it is still the active one and
                // the page was not referenced after it was made.
                let valid_req = pte.resident()
                    && pte.release_requested == Some(req.requested_at)
                    && pte.last_ref <= req.requested_at;
                hold += if valid_req {
                    let mut c = self.params.releaser_free_page;
                    if pte.dirty {
                        c += self.params.daemon_writeback_init;
                    }
                    c
                } else {
                    self.params.releaser_skip_page
                };
                decisions.push((req, valid_req));
            }

            let acq = self.procs[pid.0 as usize].lock.acquire(t, hold);
            for (req, valid_req) in decisions {
                if !valid_req {
                    // Distinguish the two skip reasons for the stats.
                    let pte = self.procs[pid.0 as usize].pt.get(req.vpn);
                    if pte.resident() && pte.last_ref > req.requested_at {
                        self.stats.releaser.skipped_reref.bump();
                        self.obs
                            .emit_page(t, req.pid.0, req.vpn.0, EventKind::ReleaseSkippedReref);
                    } else {
                        self.stats.releaser.skipped_nonresident.bump();
                        self.obs.emit_page(
                            t,
                            req.pid.0,
                            req.vpn.0,
                            EventKind::ReleaseSkippedNonresident,
                        );
                    }
                    continue;
                }
                // Re-check under the lock (the owner may have re-referenced
                // while we waited).
                let pte = self.procs[pid.0 as usize].pt.get(req.vpn);
                if !(pte.resident()
                    && pte.release_requested == Some(req.requested_at)
                    && pte.last_ref <= req.requested_at)
                {
                    self.stats.releaser.skipped_reref.bump();
                    self.obs
                        .emit_page(t, req.pid.0, req.vpn.0, EventKind::ReleaseSkippedReref);
                    continue;
                }
                let dirty = pte.dirty;
                if self.checked()
                    && pte.invalid_reason == Some(InvalidReason::Prefetched)
                    && pte.arrives_at > acq.end
                {
                    self.checked_fail(
                        acq.end,
                        "inflight_prefetch_release",
                        format!(
                            "releaser freeing {} of {} while its prefetch is in \
                             flight until t={}ns",
                            req.vpn,
                            req.pid,
                            pte.arrives_at.as_nanos()
                        ),
                    );
                }
                self.free_page(acq.end, req.pid, req.vpn, FreeSource::Release);
                self.stats.releaser.pages_released.bump();
                if dirty {
                    self.stats.releaser.writebacks.bump();
                }
            }
            t = acq.end;
        }

        self.stats.releaser.busy += t.since(now);
        self.obs.emit(
            now,
            EventKind::ReleaserBatch {
                handled: processed as u64,
                queued: self.releaser.queue.len() as u64,
            },
        );
        if self.releaser.queue.is_empty() {
            None
        } else {
            Some(t + self.tun.releaser_delay)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::TouchKind;
    use crate::params::{CostParams, Tunables};
    use crate::vmsys::{Backing, VmSys};
    use disk::SwapConfig;
    use sim_core::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    fn vm() -> VmSys {
        let mut tun = Tunables::for_memory(64);
        tun.min_freemem = 4;
        tun.target_freemem = 8;
        VmSys::new(64, tun, CostParams::default(), SwapConfig::test_array())
    }

    #[test]
    fn released_pages_are_freed_and_rescuable() {
        let mut vm = vm();
        let pid = vm.add_process(true);
        let r = vm.map_region(pid, 8, Backing::SwapPrefilled, true);
        let mut now = t(1);
        for i in 0..4 {
            now = vm.touch(now, pid, r.start.offset(i), false).done_at;
        }
        let free_before = vm.free_pages();
        vm.release(now, pid, &[r.start, r.start.offset(1)]);
        let next = vm.service_releaser(now + SimDuration::from_micros(200));
        assert!(next.is_none(), "queue drained");
        assert_eq!(vm.free_pages(), free_before + 2);
        assert_eq!(vm.stats().releaser.pages_released.get(), 2);
        assert_eq!(vm.stats().freed.freed_by_release.get(), 2);
        // The freed page can be rescued without I/O.
        let res = vm.touch(t(100), pid, r.start, false);
        assert!(matches!(res.kind, TouchKind::Rescue(FreeSource::Release)));
        assert_eq!(vm.stats().freed.rescued_release.get(), 1);
    }

    #[test]
    fn rereferenced_page_is_not_released() {
        let mut vm = vm();
        let pid = vm.add_process(true);
        let r = vm.map_region(pid, 8, Backing::SwapPrefilled, true);
        let now = t(1);
        let done = vm.touch(now, pid, r.start, false).done_at;
        vm.release(done, pid, &[r.start]);
        // Touch again before the releaser runs.
        let res = vm.touch(done + SimDuration::from_micros(50), pid, r.start, false);
        assert_eq!(res.kind, TouchKind::SoftFaultRelease);
        vm.service_releaser(res.done_at + SimDuration::from_micros(100));
        assert_eq!(vm.stats().releaser.pages_released.get(), 0);
        assert_eq!(vm.stats().releaser.skipped_reref.get(), 1);
        // Page still resident.
        assert_eq!(vm.rss(pid), 1);
    }

    #[test]
    fn dirty_release_writes_back() {
        let mut vm = vm();
        let pid = vm.add_process(true);
        let r = vm.map_region(pid, 8, Backing::SwapPrefilled, true);
        let done = vm.touch(t(1), pid, r.start, true).done_at; // write → dirty
        let writes_before = vm.swap().stats().page_writes.get();
        vm.release(done, pid, &[r.start]);
        vm.service_releaser(done + SimDuration::from_micros(200));
        assert_eq!(vm.swap().stats().page_writes.get(), writes_before + 1);
        assert_eq!(vm.stats().releaser.writebacks.get(), 1);
    }

    #[test]
    fn releaser_uses_short_lock_holds() {
        let mut vm = vm();
        vm.tun.releaser_batch = 4;
        let pid = vm.add_process(true);
        let r = vm.map_region(pid, 32, Backing::SwapPrefilled, true);
        let mut now = t(1);
        for i in 0..16 {
            now = vm.touch(now, pid, r.start.offset(i), false).done_at;
        }
        let vpns: Vec<_> = (0..16).map(|i| r.start.offset(i)).collect();
        vm.release(now, pid, &vpns);
        let acq_before = vm.lock_stats(pid).acquisitions.get();
        vm.service_releaser(now + SimDuration::from_micros(200));
        let acq_after = vm.lock_stats(pid).acquisitions.get();
        // 16 pages at batch 4 → 4 separate (short) lock holds.
        assert_eq!(acq_after - acq_before, 4);
    }

    #[test]
    fn big_queue_yields_and_rewakes() {
        let mut vm = VmSys::new(
            2048,
            Tunables::for_memory(2048),
            CostParams::default(),
            SwapConfig::test_array(),
        );
        let pid = vm.add_process(true);
        let r = vm.map_region(pid, 1024, Backing::SwapPrefilled, true);
        let mut now = t(1);
        for i in 0..700 {
            now = vm.touch(now, pid, r.start.offset(i), false).done_at;
        }
        let vpns: Vec<_> = (0..700).map(|i| r.start.offset(i)).collect();
        vm.release(now, pid, &vpns);
        let next = vm.service_releaser(now);
        assert!(next.is_some(), "512-page cap leaves work queued");
        let next2 = vm.service_releaser(next.unwrap());
        assert!(next2.is_none());
        assert_eq!(vm.stats().releaser.pages_released.get(), 700);
    }

    #[test]
    fn empty_queue_service_is_noop() {
        let mut vm = vm();
        assert!(vm.service_releaser(t(1)).is_none());
        assert_eq!(vm.stats().releaser.activations.get(), 0);
    }
}
