//! The PagingDirected shared page.
//!
//! When a process creates the PagingDirected policy module, the OS maps a
//! single read-only 16 KB page into its address space. The page holds:
//!
//! * word 0 — the process's **current usage** (resident pages);
//! * word 1 — the **upper limit** on pages it should use (Eq. 1);
//! * the rest — a **residency bitmap** indexed by virtual page number over
//!   the attached ranges (bit set ⇔ page in memory).
//!
//! Per the paper, the two words are updated **only when the process has
//! memory-system activity** (a prefetch/release request, a page fault, or a
//! page stolen from it) — not every time global conditions change. The
//! bitmap, by contrast, is maintained eagerly by the OS on every allocation
//! and reclamation.

use crate::addr::{PageRange, Vpn};

/// A simple growable bitmap.
#[derive(Clone, Debug, Default)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates a bitmap of `len` zero bits.
    pub fn new(len: usize) -> Self {
        BitVec {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Sets every bit.
    pub fn set_all(&mut self) {
        for w in &mut self.words {
            *w = u64::MAX;
        }
        // Clear the tail beyond len for a clean popcount.
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// The shared page: usage/limit words plus per-range residency bitmaps.
#[derive(Clone, Debug, Default)]
pub struct SharedPage {
    /// Word 0: pages currently in use (lazily updated).
    pub usage_word: u64,
    /// Word 1: upper limit on pages to use (lazily updated, Eq. 1).
    pub limit_word: u64,
    ranges: Vec<(PageRange, BitVec)>,
}

impl SharedPage {
    /// Creates a shared page with no attached ranges.
    ///
    /// Per the paper, all bits are conceptually set when the PM is created;
    /// attaching a range clears the bits for those addresses. We materialize
    /// bitmaps per attached range directly in the cleared state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches the PM to a range of the address space (bits cleared).
    ///
    /// # Panics
    ///
    /// Panics if the range overlaps an already-attached range.
    pub fn attach(&mut self, range: PageRange) {
        for (existing, _) in &self.ranges {
            let disjoint = range.end().0 <= existing.start.0 || existing.end().0 <= range.start.0;
            assert!(
                disjoint,
                "overlapping PM attachment: {range:?} vs {existing:?}"
            );
        }
        let bits = BitVec::new(range.len as usize);
        self.ranges.push((range, bits));
    }

    /// Whether `vpn` is covered by any attached range.
    pub fn covers(&self, vpn: Vpn) -> bool {
        self.ranges.iter().any(|(r, _)| r.contains(vpn))
    }

    /// Reads the residency bit for `vpn`. Pages outside attached ranges read
    /// as set (the paper initializes non-attached bits to 1).
    pub fn is_resident(&self, vpn: Vpn) -> bool {
        for (r, bits) in &self.ranges {
            if r.contains(vpn) {
                return bits.get(r.offset_of(vpn) as usize);
            }
        }
        true
    }

    /// Updates the residency bit for `vpn` (no-op outside attached ranges).
    pub fn set_resident(&mut self, vpn: Vpn, resident: bool) {
        for (r, bits) in &mut self.ranges {
            if r.contains(vpn) {
                bits.set(r.offset_of(vpn) as usize, resident);
                return;
            }
        }
    }

    /// Refreshes the usage/limit words (called by the OS on memory-system
    /// activity of the owning process).
    pub fn refresh(&mut self, usage: u64, limit: u64) {
        self.usage_word = usage;
        self.limit_word = limit;
    }

    /// Total resident bits across attached ranges (for diagnostics).
    pub fn resident_count(&self) -> usize {
        self.ranges.iter().map(|(_, b)| b.count_ones()).sum()
    }
}

/// Computes the Eq. 1 upper limit:
///
/// `upper_limit = min(maxrss, current_size + tot_freemem - min_freemem)`
///
/// Saturates at zero if free memory is below `min_freemem`.
pub fn upper_limit(maxrss: u64, current_size: u64, tot_freemem: u64, min_freemem: u64) -> u64 {
    let competed = current_size + tot_freemem.saturating_sub(min_freemem);
    maxrss.min(competed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitvec_set_get() {
        let mut b = BitVec::new(130);
        assert!(!b.get(0));
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0));
        assert!(b.get(64));
        assert!(b.get(129));
        assert_eq!(b.count_ones(), 3);
        b.set(64, false);
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn bitvec_set_all_respects_len() {
        let mut b = BitVec::new(70);
        b.set_all();
        assert_eq!(b.count_ones(), 70);
    }

    #[test]
    #[should_panic]
    fn bitvec_out_of_range_panics() {
        BitVec::new(8).get(8);
    }

    #[test]
    fn shared_page_attach_and_bits() {
        let mut sp = SharedPage::new();
        sp.attach(PageRange::new(Vpn(100), 10));
        // Attached bits start cleared.
        assert!(!sp.is_resident(Vpn(100)));
        // Unattached addresses read as set.
        assert!(sp.is_resident(Vpn(0)));
        sp.set_resident(Vpn(105), true);
        assert!(sp.is_resident(Vpn(105)));
        assert_eq!(sp.resident_count(), 1);
        sp.set_resident(Vpn(105), false);
        assert!(!sp.is_resident(Vpn(105)));
    }

    #[test]
    fn set_resident_outside_ranges_is_noop() {
        let mut sp = SharedPage::new();
        sp.attach(PageRange::new(Vpn(0), 4));
        sp.set_resident(Vpn(50), true);
        assert_eq!(sp.resident_count(), 0);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlapping_attach_panics() {
        let mut sp = SharedPage::new();
        sp.attach(PageRange::new(Vpn(0), 10));
        sp.attach(PageRange::new(Vpn(5), 10));
    }

    #[test]
    fn multiple_disjoint_ranges() {
        let mut sp = SharedPage::new();
        sp.attach(PageRange::new(Vpn(0), 4));
        sp.attach(PageRange::new(Vpn(100), 4));
        sp.set_resident(Vpn(2), true);
        sp.set_resident(Vpn(101), true);
        assert!(sp.covers(Vpn(2)));
        assert!(sp.covers(Vpn(101)));
        assert!(!sp.covers(Vpn(50)));
        assert_eq!(sp.resident_count(), 2);
    }

    #[test]
    fn eq1_upper_limit() {
        // Ample memory: limited by maxrss.
        assert_eq!(upper_limit(1000, 200, 5000, 100), 1000);
        // Limited memory: current + free - min_freemem.
        assert_eq!(upper_limit(10_000, 200, 500, 100), 600);
        // Free below min_freemem saturates the free contribution.
        assert_eq!(upper_limit(10_000, 200, 50, 100), 200);
    }

    #[test]
    fn refresh_updates_words() {
        let mut sp = SharedPage::new();
        sp.refresh(42, 99);
        assert_eq!(sp.usage_word, 42);
        assert_eq!(sp.limit_word, 99);
    }
}
