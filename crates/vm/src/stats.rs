//! VM statistics, organized around the paper's evaluation.

use sim_core::stats::Counter;
use sim_core::SimDuration;

/// Paging daemon ("vhand") statistics — Table 3 and Figure 8 inputs.
#[derive(Clone, Debug, Default)]
pub struct PagingdStats {
    /// Activations ("number of times the paging daemon needs to operate").
    pub activations: Counter,
    /// Forced activations: an allocation found the free list *empty* and
    /// had to run the daemon inline. Nonzero deltas are the strongest
    /// overload signal the machine produces (the pressure monitor grades
    /// them straight to `Emergency`).
    pub forced_activations: Counter,
    /// Frames examined across all clock passes.
    pub frames_scanned: Counter,
    /// Pages invalidated to sample references (each may later produce a
    /// Figure 8 soft fault in the owner).
    pub invalidations: Counter,
    /// Pages stolen (unmapped and freed).
    pub pages_stolen: Counter,
    /// Dirty steals that required writeback.
    pub writebacks: Counter,
    /// Steals satisfied by application-chosen (reactive) candidates
    /// instead of clock victims.
    pub reactive_steals: Counter,
    /// Steals skipped because the victim sat at or below its guaranteed
    /// tenant quota while another tenant was above its own guarantee.
    pub quota_protected: Counter,
    /// Total daemon busy time.
    pub busy: SimDuration,
}

/// Releaser daemon statistics.
#[derive(Clone, Debug, Default)]
pub struct ReleaserStats {
    /// Service activations.
    pub activations: Counter,
    /// Individual page-release requests received.
    pub requests: Counter,
    /// Pages actually freed.
    pub pages_released: Counter,
    /// Requests dropped because the page was re-referenced after the
    /// request (bit-vector check).
    pub skipped_reref: Counter,
    /// Requests dropped because the page was not resident.
    pub skipped_nonresident: Counter,
    /// Dirty releases that required writeback.
    pub writebacks: Counter,
    /// Total releaser busy time.
    pub busy: SimDuration,
}

/// Freed-page outcome accounting for Figure 9.
#[derive(Clone, Debug, Default)]
pub struct FreedPageStats {
    /// Pages freed by the paging daemon.
    pub freed_by_daemon: Counter,
    /// Pages freed by explicit release.
    pub freed_by_release: Counter,
    /// Daemon-freed pages later rescued from the free list.
    pub rescued_daemon: Counter,
    /// Release-freed pages later rescued from the free list.
    pub rescued_release: Counter,
}

/// Per-process statistics.
#[derive(Clone, Debug, Default)]
pub struct ProcStats {
    /// Soft faults caused by daemon reference sampling (Figure 8).
    pub soft_faults_daemon: Counter,
    /// Soft faults that cancelled a pending release.
    pub soft_faults_release: Counter,
    /// Validation faults on first touch of prefetched pages.
    pub prefetch_validates: Counter,
    /// Hard (I/O) page faults (Figure 10c for the interactive task).
    pub hard_faults: Counter,
    /// Zero-fill minor faults.
    pub zero_fills: Counter,
    /// Own pages rescued from the free list.
    pub rescues: Counter,
    /// Pages stolen from this process by the paging daemon.
    pub pages_stolen: Counter,
    /// Pages of this process freed via explicit release.
    pub pages_released: Counter,
    /// Prefetch requests issued to the PM on this process's behalf.
    pub prefetch_requests: Counter,
    /// Prefetch requests discarded for lack of free memory.
    pub prefetch_discarded: Counter,
    /// Prefetch requests that found the page already resident.
    pub prefetch_redundant: Counter,
    /// Prefetch requests denied because the tenant was at its quota cap.
    pub prefetch_quota_denied: Counter,
    /// TLB misses.
    pub tlb_misses: Counter,
    /// Total frame allocations performed for this process (page
    /// allocations, Table 3's companion metric).
    pub allocations: Counter,
    /// Peak resident set size (pages).
    pub peak_rss: u64,
}

/// All VM statistics.
#[derive(Clone, Debug, Default)]
pub struct VmStats {
    /// Paging daemon counters.
    pub pagingd: PagingdStats,
    /// Releaser counters.
    pub releaser: ReleaserStats,
    /// Figure 9 freed-page outcomes.
    pub freed: FreedPageStats,
    /// Per-process counters, indexed by `Pid`.
    pub procs: Vec<ProcStats>,
}

impl VmStats {
    /// Per-process stats, growing the vector as processes appear.
    pub fn proc_mut(&mut self, pid: usize) -> &mut ProcStats {
        if pid >= self.procs.len() {
            self.procs.resize_with(pid + 1, ProcStats::default);
        }
        &mut self.procs[pid]
    }

    /// Per-process stats (default if the process never had activity).
    pub fn proc(&self, pid: usize) -> ProcStats {
        self.procs.get(pid).cloned().unwrap_or_default()
    }

    /// Total pages freed by either mechanism.
    pub fn total_freed(&self) -> u64 {
        self.freed.freed_by_daemon.get() + self.freed.freed_by_release.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_mut_grows() {
        let mut s = VmStats::default();
        s.proc_mut(3).hard_faults.bump();
        assert_eq!(s.procs.len(), 4);
        assert_eq!(s.proc(3).hard_faults.get(), 1);
        assert_eq!(s.proc(7).hard_faults.get(), 0);
    }

    #[test]
    fn total_freed_sums_sources() {
        let mut s = VmStats::default();
        s.freed.freed_by_daemon.add(5);
        s.freed.freed_by_release.add(7);
        assert_eq!(s.total_freed(), 12);
    }
}
