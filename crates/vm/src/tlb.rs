//! A small TLB model.
//!
//! The R10000 has a 64-entry software-managed TLB. We model it as a FIFO set
//! of virtual page numbers; a miss costs a software refill. The
//! PagingDirected PM deliberately does **not** insert entries for prefetched
//! pages ("prevents mappings for prefetched pages from displacing TLB
//! entries which are still in use"), so prefetch completions leave the TLB
//! untouched — only the first real reference installs an entry.

use std::collections::{HashSet, VecDeque};

use crate::addr::Vpn;

/// A FIFO TLB of fixed capacity.
#[derive(Clone, Debug)]
pub struct Tlb {
    capacity: usize,
    fifo: VecDeque<Vpn>,
    set: HashSet<Vpn>,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB of `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB needs at least one entry");
        Tlb {
            capacity,
            fifo: VecDeque::with_capacity(capacity),
            set: HashSet::with_capacity(capacity * 2),
            hits: 0,
            misses: 0,
        }
    }

    /// References `vpn`: returns `true` on hit; on miss, installs the entry
    /// (evicting FIFO) and returns `false`.
    pub fn touch(&mut self, vpn: Vpn) -> bool {
        if self.set.contains(&vpn) {
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.fifo.len() == self.capacity {
            if let Some(old) = self.fifo.pop_front() {
                self.set.remove(&old);
            }
        }
        self.fifo.push_back(vpn);
        self.set.insert(vpn);
        false
    }

    /// Drops the entry for `vpn` if present (page invalidated or unmapped).
    pub fn invalidate(&mut self, vpn: Vpn) {
        if self.set.remove(&vpn) {
            self.fifo.retain(|&v| v != vpn);
        }
    }

    /// Total hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_install() {
        let mut tlb = Tlb::new(4);
        assert!(!tlb.touch(Vpn(1)), "first touch misses");
        assert!(tlb.touch(Vpn(1)), "second touch hits");
        assert_eq!(tlb.hits(), 1);
        assert_eq!(tlb.misses(), 1);
    }

    #[test]
    fn fifo_eviction() {
        let mut tlb = Tlb::new(2);
        tlb.touch(Vpn(1));
        tlb.touch(Vpn(2));
        tlb.touch(Vpn(3)); // evicts 1
        assert!(!tlb.touch(Vpn(1)), "1 was evicted");
        assert!(tlb.touch(Vpn(3)));
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut tlb = Tlb::new(4);
        tlb.touch(Vpn(7));
        tlb.invalidate(Vpn(7));
        assert!(!tlb.touch(Vpn(7)));
    }

    #[test]
    fn invalidate_absent_is_noop() {
        let mut tlb = Tlb::new(2);
        tlb.touch(Vpn(1));
        tlb.invalidate(Vpn(99));
        assert!(tlb.touch(Vpn(1)));
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        Tlb::new(0);
    }
}
