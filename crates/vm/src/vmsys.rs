//! The VM system facade.
//!
//! [`VmSys`] owns the frame table, the global free list, the swap device,
//! all process address spaces, and the two kernel daemons. Its API is the
//! OS boundary the rest of the reproduction talks to:
//!
//! * [`VmSys::touch`] — a memory reference: TLB, soft/hard fault paths,
//!   rescue from the free list, zero-fill.
//! * [`VmSys::prefetch`] / [`VmSys::release`] — the PagingDirected PM
//!   operations.
//! * [`VmSys::service_pagingd`] / [`VmSys::service_releaser`] — daemon
//!   activations driven by the simulation engine.
//!
//! Every operation returns explicit timing; nothing inside the crate knows
//! about the event queue.

use std::collections::{HashMap, VecDeque};

use disk::{IoKind, SwapConfig, SwapDevice, SwapSlot};
use sim_core::obs::{EventKind, Recorder};
use sim_core::oracle::{naive_limit, Oracle};
use sim_core::sanitizer::{InvariantViolation, Mutation};
use sim_core::{SimDuration, SimTime};

use crate::addr::{PageRange, Pfn, Pid, Vpn};
use crate::frame::{FrameTable, FreeSource};
use crate::freelist::FreeList;
use crate::lock::TimelineLock;
use crate::outcome::{PrefetchOutcome, ReleaseEnqueue, TouchKind, TouchResult};
use crate::pagetable::{InvalidReason, PageTable};
use crate::pagingd::PagingDaemon;
use crate::params::{CostParams, Tunables};
use crate::policy::PagingDirected;
use crate::quota::{QuotaSet, TenantQuota};
use crate::releaser::Releaser;
use crate::shared_page::upper_limit;
use crate::stats::VmStats;
use crate::tlb::Tlb;

/// What backs a region's pages before they are first touched.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backing {
    /// Out-of-core data: the region's content already lives in swap, so the
    /// first touch of every page is a demand page-in.
    SwapPrefilled,
    /// Ordinary anonymous memory: the first touch is a zero-fill minor
    /// fault; swap slots are assigned on first eviction.
    ZeroFill,
}

/// A mapped region of a process's address space.
#[derive(Clone, Debug)]
pub(crate) struct Region {
    pub range: PageRange,
    pub backing: Backing,
    /// For `SwapPrefilled`: slot of the region's first page.
    pub base_slot: Option<SwapSlot>,
}

/// One process's memory-management state.
pub(crate) struct ProcessMem {
    pub pt: PageTable,
    pub regions: Vec<Region>,
    pub tlb: Tlb,
    pub lock: TimelineLock,
    pub pm: Option<PagingDirected>,
    next_vpn: u64,
}

/// Why a VM operation could not be completed.
///
/// Only genuinely unrecoverable conditions surface here; the panicking
/// wrappers ([`VmSys::touch`]) keep hot-path call sites unchanged while
/// `try_` variants let embedders handle the failure themselves.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VmError {
    /// The address lies outside every mapped region of the process.
    UnmappedAddress {
        /// The faulting process.
        pid: Pid,
        /// The unmapped page.
        vpn: Vpn,
    },
    /// Repeated paging-daemon activations could not reclaim a frame.
    OutOfMemory {
        /// The process whose allocation could not be satisfied.
        pid: Pid,
    },
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::UnmappedAddress { pid, vpn } => {
                write!(f, "{pid} touched unmapped address {vpn}")
            }
            VmError::OutOfMemory { pid } => write!(
                f,
                "out of physical memory: no frame reclaimable for {pid} after 64 daemon passes"
            ),
        }
    }
}

impl std::error::Error for VmError {}

/// A snapshot of the shared page's usage/limit words as the application
/// reads them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SharedView {
    /// Word 0: resident pages at the last refresh.
    pub usage: u64,
    /// Word 1: Eq. 1 upper limit at the last refresh.
    pub limit: u64,
}

/// The VM system (see module docs).
///
/// # Examples
///
/// ```
/// use vm::{Backing, VmSys, TouchKind};
/// use sim_core::SimTime;
///
/// let mut vm = VmSys::with_defaults(256);
/// let pid = vm.add_process(true); // with the PagingDirected PM
/// let region = vm.map_region(pid, 16, Backing::SwapPrefilled, true);
///
/// // First touch demand-faults from swap; the second hits.
/// let first = vm.touch(SimTime::ZERO, pid, region.start, false);
/// assert_eq!(first.kind, TouchKind::HardFault);
/// let second = vm.touch(first.done_at, pid, region.start, false);
/// assert_eq!(second.kind, TouchKind::Hit);
///
/// // Release it back: the bitmap bit clears at request time and the
/// // releaser daemon frees it.
/// vm.release(second.done_at, pid, &[region.start]);
/// assert!(!vm.pm_resident(pid, region.start));
/// vm.service_releaser(second.done_at);
/// assert_eq!(vm.rss(pid), 0);
/// ```
pub struct VmSys {
    pub(crate) params: CostParams,
    pub(crate) tun: Tunables,
    pub(crate) swap: SwapDevice,
    pub(crate) frames: FrameTable,
    pub(crate) free: FreeList,
    pub(crate) procs: Vec<ProcessMem>,
    pub(crate) pagingd: PagingDaemon,
    pub(crate) releaser: Releaser,
    /// Crash injection can kill the releaser; while dead, release
    /// requests are lost and the paging daemon is the only reclaimer.
    releaser_alive: bool,
    pub(crate) stats: VmStats,
    /// Reactive-mode eviction candidates per process (VINO-style: the
    /// application tells the OS which of its pages to take when the OS
    /// decides to reclaim from it).
    pub(crate) reactive: HashMap<Pid, VecDeque<Vpn>>,
    /// Per-tenant quota contracts plus the frame-charge / hint-debt
    /// ledgers. Empty = stock Eq. 1 behaviour for everyone.
    pub(crate) quota: QuotaSet,
    /// Free-memory level at the last threshold-notification broadcast.
    last_broadcast_free: u64,
    /// Structured kernel-activity flight recorder (disabled by default).
    pub(crate) obs: Recorder,
    next_swap_slot: u64,
    /// Checked mode: invariant probes fire at state-mutation sites.
    checked: bool,
    /// The lockstep reference oracle (present only in checked mode).
    oracle: Option<Oracle>,
    /// Shadow copy of each PM process's shared usage/limit words taken at
    /// the last legitimate refresh; out-of-band tampering is caught by
    /// comparison at the next probe sweep.
    checked_shadow: HashMap<u32, (u64, u64)>,
    /// Clock-hand position recorded at the end of the last paging-daemon
    /// activation (checked mode): the hand must not move between
    /// activations.
    checked_hand: Option<usize>,
    /// Suppresses oracle feeding for one operation (the `StealthFree`
    /// self-test mutation: a legitimate free the oracle never hears of).
    oracle_mute: bool,
}

impl VmSys {
    /// Creates a machine with `total_frames` user-available frames.
    pub fn new(
        total_frames: usize,
        tun: Tunables,
        params: CostParams,
        swap_config: SwapConfig,
    ) -> Self {
        let frames = FrameTable::new(total_frames);
        let mut free = FreeList::new();
        free.fill_initial(&frames);
        VmSys {
            params,
            tun,
            swap: SwapDevice::new(swap_config),
            frames,
            free,
            procs: Vec::new(),
            pagingd: PagingDaemon::new(),
            releaser: Releaser::new(),
            releaser_alive: true,
            stats: VmStats::default(),
            reactive: HashMap::new(),
            quota: QuotaSet::new(),
            last_broadcast_free: total_frames as u64,
            obs: Recorder::default(),
            next_swap_slot: 0,
            checked: false,
            oracle: None,
            checked_shadow: HashMap::new(),
            checked_hand: None,
            oracle_mute: false,
        }
    }

    /// Convenience constructor with default tunables and costs.
    pub fn with_defaults(total_frames: usize) -> Self {
        VmSys::new(
            total_frames,
            Tunables::for_memory(total_frames as u64),
            CostParams::default(),
            SwapConfig::paper(),
        )
    }

    /// Creates a process; `with_pm` attaches the PagingDirected PM.
    pub fn add_process(&mut self, with_pm: bool) -> Pid {
        let pid = Pid(self.procs.len() as u32);
        self.procs.push(ProcessMem {
            pt: PageTable::new(),
            regions: Vec::new(),
            tlb: Tlb::new(64),
            lock: TimelineLock::new(),
            pm: with_pm.then(PagingDirected::new),
            next_vpn: 0x1000, // arbitrary nonzero base
        });
        self.stats.proc_mut(pid.0 as usize);
        pid
    }

    /// Maps a region of `npages` pages; if the process has the
    /// PagingDirected PM and `attach_pm` is set, the PM governs the region.
    pub fn map_region(
        &mut self,
        pid: Pid,
        npages: u64,
        backing: Backing,
        attach_pm: bool,
    ) -> PageRange {
        let base_slot = match backing {
            Backing::SwapPrefilled => {
                let slot = SwapSlot(self.next_swap_slot);
                self.next_swap_slot += npages;
                Some(slot)
            }
            Backing::ZeroFill => None,
        };
        let p = &mut self.procs[pid.0 as usize];
        let range = PageRange::new(Vpn(p.next_vpn), npages);
        p.next_vpn += npages + 16; // guard gap between regions
        p.regions.push(Region {
            range,
            backing,
            base_slot,
        });
        if attach_pm {
            if let Some(pm) = p.pm.as_mut() {
                pm.attach(range);
            }
        }
        range
    }

    /// Number of frames currently free.
    pub fn free_pages(&self) -> u64 {
        self.free.live() as u64
    }

    /// Total frames in the machine.
    pub fn total_frames(&self) -> u64 {
        self.frames.len() as u64
    }

    /// Resident set size of a process, in pages.
    pub fn rss(&self, pid: Pid) -> u64 {
        self.procs[pid.0 as usize].pt.resident_pages()
    }

    /// Read-only statistics.
    pub fn stats(&self) -> &VmStats {
        &self.stats
    }

    /// Read-only swap-device view.
    pub fn swap(&self) -> &SwapDevice {
        &self.swap
    }

    /// Mutable swap-device access (e.g. to arm I/O fault injection).
    pub fn swap_mut(&mut self) -> &mut SwapDevice {
        &mut self.swap
    }

    /// The tunables in force.
    pub fn tunables(&self) -> &Tunables {
        &self.tun
    }

    /// The cost parameters in force.
    pub fn cost_params(&self) -> &CostParams {
        &self.params
    }

    /// Shrinks the per-process upper memory limit (`maxrss`) to `frac` of
    /// its current value — fault injection's hostile memory hog claiming
    /// the machine mid-run. The paging daemon will trim over-limit
    /// processes on its next activation; the shared-page limit words pick
    /// the new value up on their next refresh, exactly as a real
    /// `setrlimit` would be observed lazily. Returns `(old, new)` limits
    /// in pages.
    pub fn shrink_limit(&mut self, frac: f64) -> (u64, u64) {
        let old = self.tun.maxrss;
        let floor = (self.tun.target_freemem.max(16)).min(old);
        let new = ((old as f64 * frac.clamp(0.0, 1.0)) as u64).max(floor);
        self.tun.maxrss = new;
        // The daemon must notice newly over-limit processes promptly.
        self.pagingd.request_wake();
        (old, new)
    }

    /// Address-space lock statistics for one process.
    pub fn lock_stats(&self, pid: Pid) -> crate::lock::LockStats {
        *self.procs[pid.0 as usize].lock.stats()
    }

    /// Registers (or replaces) a tenant's memory quota. Tenants without a
    /// quota keep the stock Eq. 1 behaviour.
    pub fn set_tenant_quota(&mut self, pid: Pid, quota: TenantQuota) {
        self.quota.set(pid.0, quota);
        // A tighter cap may make the tenant over-limit immediately.
        self.pagingd.request_wake();
    }

    /// Read access to the quota registry and its ledgers.
    pub fn quotas(&self) -> &QuotaSet {
        &self.quota
    }

    /// The effective page cap for `pid`:
    /// `min(maxrss, guaranteed + burst - debt)` for quota'd tenants,
    /// `maxrss` otherwise.
    pub fn tenant_cap(&self, pid: Pid) -> u64 {
        self.quota.cap(pid.0, self.tun.maxrss)
    }

    // ------------------------------------------------------------------
    // Shared-page access (what the run-time layer reads).
    // ------------------------------------------------------------------

    /// Reads the usage/limit words of a process's shared page.
    ///
    /// Lazy semantics (the paper's): the words are whatever the last
    /// memory-system activity left there. With the
    /// `immediate_limit_updates` ablation they are recomputed on every read.
    pub fn shared_view(&self, pid: Pid) -> Option<SharedView> {
        let p = &self.procs[pid.0 as usize];
        let pm = p.pm.as_ref()?;
        if self.tun.immediate_limit_updates {
            let usage = p.pt.resident_pages();
            let limit = upper_limit(
                self.tun.maxrss,
                usage,
                self.free.live() as u64,
                self.tun.min_freemem,
            )
            .min(self.quota.cap(pid.0, self.tun.maxrss));
            Some(SharedView { usage, limit })
        } else {
            Some(SharedView {
                usage: pm.shared.usage_word,
                limit: pm.shared.limit_word,
            })
        }
    }

    /// Reads one residency bit from the shared page (bitmap reads are
    /// always current; the OS maintains them eagerly).
    pub fn pm_resident(&self, pid: Pid, vpn: Vpn) -> bool {
        match &self.procs[pid.0 as usize].pm {
            Some(pm) => pm.shared.is_resident(vpn),
            None => false,
        }
    }

    /// Refreshes the shared page's usage/limit words (the OS does this on
    /// every memory-system activity of the owning process).
    pub(crate) fn refresh_shared(&mut self, now: SimTime, pid: Pid) {
        let free = self.free.live() as u64;
        let pidx = pid.0 as usize;
        let usage = self.procs[pidx].pt.resident_pages();
        let limit = upper_limit(self.tun.maxrss, usage, free, self.tun.min_freemem);
        if self.checked && self.procs[pidx].pm.is_some() {
            // Probe *before* overwriting: a tampered word must be caught
            // here, not silently repaired by this refresh. And diff the
            // optimized Eq. 1 against the oracle's naive arithmetic.
            let p = &self.procs[pidx];
            if let (Some(pm), Some(&(u, l))) = (p.pm.as_ref(), self.checked_shadow.get(&pid.0)) {
                if (pm.shared.usage_word, pm.shared.limit_word) != (u, l) {
                    self.checked_fail(
                        now,
                        "eq1_accounting",
                        format!(
                            "pid {}: shared words ({}, {}) diverged from the last refresh ({u}, {l})",
                            pid.0, pm.shared.usage_word, pm.shared.limit_word
                        ),
                    );
                }
            }
            let naive = naive_limit(self.tun.maxrss, usage, free, self.tun.min_freemem);
            if naive != limit {
                self.checked_fail(
                    now,
                    "oracle_eq1",
                    format!("Eq. 1 disagreement: optimized limit {limit}, naive spec {naive}"),
                );
            }
        }
        // Per-tenant quota clamp, applied *after* the oracle comparison:
        // the oracle models the paper's raw Eq. 1; the quota is this
        // reproduction's multi-tenant extension layered on top of it.
        let limit = limit.min(self.quota.cap(pid.0, self.tun.maxrss));
        let p = &mut self.procs[pidx];
        if let Some(pm) = p.pm.as_mut() {
            pm.shared.refresh(usage, limit);
            if self.checked {
                self.checked_shadow.insert(pid.0, (usage, limit));
            }
        }
        self.maybe_broadcast(free);
    }

    /// §3.1.1 threshold notification: if free memory moved beyond the
    /// configured threshold since the last broadcast, refresh every PM
    /// process's shared words (the alternative the paper chose not to
    /// build; provided for the ablation study).
    fn maybe_broadcast(&mut self, free: u64) {
        let Some(threshold) = self.tun.shared_update_threshold else {
            return;
        };
        if free.abs_diff(self.last_broadcast_free) <= threshold {
            return;
        }
        self.last_broadcast_free = free;
        for (pidx, p) in self.procs.iter_mut().enumerate() {
            if let Some(pm) = p.pm.as_mut() {
                let usage = p.pt.resident_pages();
                let limit = upper_limit(self.tun.maxrss, usage, free, self.tun.min_freemem)
                    .min(self.quota.cap(pidx as u32, self.tun.maxrss));
                pm.shared.refresh(usage, limit);
                if self.checked {
                    self.checked_shadow.insert(pidx as u32, (usage, limit));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Touch (the memory-reference entry point).
    // ------------------------------------------------------------------

    /// References `(pid, vpn)` at `now`. Returns the timed outcome.
    ///
    /// # Panics
    ///
    /// Panics if the address is not inside any mapped region, or if the
    /// machine is irrecoverably out of memory; use [`VmSys::try_touch`] on
    /// paths where either is a recoverable condition.
    pub fn touch(&mut self, now: SimTime, pid: Pid, vpn: Vpn, write: bool) -> TouchResult {
        self.try_touch(now, pid, vpn, write)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`VmSys::touch`]: references `(pid, vpn)` at `now`,
    /// returning the timed outcome or the reason the reference is
    /// unserviceable ([`VmError::UnmappedAddress`],
    /// [`VmError::OutOfMemory`]).
    pub fn try_touch(
        &mut self,
        now: SimTime,
        pid: Pid,
        vpn: Vpn,
        write: bool,
    ) -> Result<TouchResult, VmError> {
        let pidx = pid.0 as usize;
        let pte = self.procs[pidx].pt.get(vpn);

        if pte.resident() {
            return Ok(self.touch_resident(now, pid, vpn, write));
        }

        // Not resident: rescue, zero-fill, or hard fault.
        if self.tun.rescue_enabled {
            if let Some(result) = self.try_rescue(now, pid, vpn, write) {
                return Ok(result);
            }
        }

        let region = self
            .region_of(pid, vpn)
            .ok_or(VmError::UnmappedAddress { pid, vpn })?;
        let needs_io = match region.backing {
            Backing::SwapPrefilled => true,
            // Zero-fill pages need I/O only once they've been written back.
            Backing::ZeroFill => pte.materialized && pte.swap_slot.is_some(),
        };
        if needs_io {
            self.hard_fault(now, pid, vpn, write)
        } else {
            self.zero_fill(now, pid, vpn, write)
        }
    }

    fn touch_resident(&mut self, now: SimTime, pid: Pid, vpn: Vpn, write: bool) -> TouchResult {
        let pidx = pid.0 as usize;
        let params = self.params;

        // Split-borrow dance: everything we need hangs off procs[pidx].
        let (valid, reason, arrives_at) = {
            let e = self.procs[pidx].pt.entry(vpn);
            e.last_ref = now;
            e.clock_sampled = false;
            e.hw_referenced = true;
            if write {
                e.dirty = true;
            }
            (e.valid, e.invalid_reason, e.arrives_at)
        };

        if valid {
            let tlb_hit = self.procs[pidx].tlb.touch(vpn);
            if tlb_hit {
                return TouchResult::hit(now);
            }
            self.stats.proc_mut(pidx).tlb_misses.bump();
            return TouchResult {
                kind: TouchKind::TlbMiss,
                system: params.tlb_refill,
                resource_wait: SimDuration::ZERO,
                io_wait: SimDuration::ZERO,
                lock_wait: SimDuration::ZERO,
                io_queue: SimDuration::ZERO,
                done_at: now + params.tlb_refill,
            };
        }

        // Resident but invalid: one of the three software-sampling states.
        match reason {
            Some(InvalidReason::Prefetched) => {
                // Wait for the in-flight prefetch, then validate.
                let io_wait = arrives_at.since(now);
                let t_arrived = now + io_wait;
                let system = params.prefetch_validate + params.tlb_refill;
                self.validate_pte(pidx, vpn, now);
                self.procs[pidx].tlb.touch(vpn);
                self.stats.proc_mut(pidx).prefetch_validates.bump();
                self.quota.credit(pid.0, 1);
                self.note_page(now, pid.0, vpn.0, EventKind::PrefetchValidated);
                TouchResult {
                    kind: TouchKind::PrefetchValidate,
                    system,
                    resource_wait: SimDuration::ZERO,
                    io_wait,
                    lock_wait: SimDuration::ZERO,
                    io_queue: SimDuration::ZERO,
                    done_at: t_arrived + system,
                }
            }
            Some(InvalidReason::DaemonSample) => {
                let acq = self.procs[pidx].lock.acquire(now, params.soft_fault_lock);
                let system = params.soft_fault;
                self.validate_pte(pidx, vpn, now);
                self.procs[pidx].tlb.touch(vpn);
                self.stats.proc_mut(pidx).soft_faults_daemon.bump();
                self.note_page(now, pid.0, vpn.0, EventKind::SoftFaultDaemon);
                self.refresh_shared(now, pid);
                TouchResult {
                    kind: TouchKind::SoftFaultDaemon,
                    system,
                    resource_wait: acq.wait,
                    io_wait: SimDuration::ZERO,
                    lock_wait: acq.wait,
                    io_queue: SimDuration::ZERO,
                    done_at: acq.start + system,
                }
            }
            Some(InvalidReason::ReleasePending) => {
                // The touch cancels the pending release (the releaser's
                // bit-vector check will see the re-reference).
                let acq = self.procs[pidx].lock.acquire(now, params.soft_fault_lock);
                let system = params.soft_fault;
                {
                    let e = self.procs[pidx].pt.entry(vpn);
                    e.release_requested = None;
                }
                self.validate_pte(pidx, vpn, now);
                self.procs[pidx].tlb.touch(vpn);
                if let Some(pm) = self.procs[pidx].pm.as_mut() {
                    pm.shared.set_resident(vpn, true);
                }
                self.stats.proc_mut(pidx).soft_faults_release.bump();
                // A cancelled release wasted kernel work on both ends.
                self.quota.debit(pid.0, 1);
                self.note_page(now, pid.0, vpn.0, EventKind::ReleaseCancelled);
                self.refresh_shared(now, pid);
                TouchResult {
                    kind: TouchKind::SoftFaultRelease,
                    system,
                    resource_wait: acq.wait,
                    io_wait: SimDuration::ZERO,
                    lock_wait: acq.wait,
                    io_queue: SimDuration::ZERO,
                    done_at: acq.start + system,
                }
            }
            None => {
                // Resident, invalid, no recorded reason: treat as a daemon
                // sample for robustness (should not happen).
                debug_assert!(false, "resident invalid PTE with no reason");
                self.validate_pte(pidx, vpn, now);
                TouchResult::hit(now)
            }
        }
    }

    fn validate_pte(&mut self, pidx: usize, vpn: Vpn, now: SimTime) {
        let e = self.procs[pidx].pt.entry(vpn);
        e.valid = true;
        e.invalid_reason = None;
        e.clock_sampled = false;
        e.hw_referenced = true;
        e.last_ref = now;
    }

    fn try_rescue(&mut self, now: SimTime, pid: Pid, vpn: Vpn, write: bool) -> Option<TouchResult> {
        let pidx = pid.0 as usize;
        let pfn = self.free.rescue(&mut self.frames, pid, vpn)?;
        let params = self.params;
        let source = self.frames.get(pfn).source;
        let acq = self.procs[pidx].lock.acquire(now, params.rescue_lock);
        let system = params.rescue_fault;

        let frame_dirty = self.frames.get(pfn).dirty;
        {
            let frames = self.frames.get_mut(pfn);
            frames.owner = Some((pid, vpn));
        }
        self.procs[pidx].pt.map(vpn, pfn);
        {
            let e = self.procs[pidx].pt.entry(vpn);
            e.valid = true;
            e.invalid_reason = None;
            e.dirty = frame_dirty || write;
            e.last_ref = now;
            e.clock_sampled = false;
            e.hw_referenced = true;
            e.release_requested = None;
            e.materialized = true;
        }
        self.procs[pidx].tlb.touch(vpn);
        if let Some(pm) = self.procs[pidx].pm.as_mut() {
            pm.shared.set_resident(vpn, true);
        }
        let stats = self.stats.proc_mut(pidx);
        stats.rescues.bump();
        self.quota.charge(pid.0);
        match source {
            FreeSource::Daemon => {
                self.stats.freed.rescued_daemon.bump();
                self.note_page(now, pid.0, vpn.0, EventKind::RescueDaemon);
            }
            FreeSource::Release => {
                // A rescued release wasted the releaser's work: the hint
                // named a page the tenant still needed.
                self.stats.freed.rescued_release.bump();
                self.quota.debit(pid.0, 1);
                self.note_page(now, pid.0, vpn.0, EventKind::RescueRelease);
            }
            _ => {}
        }
        self.update_peak_rss(pidx);
        self.refresh_shared(now, pid);
        Some(TouchResult {
            kind: TouchKind::Rescue(source),
            system,
            resource_wait: acq.wait,
            io_wait: SimDuration::ZERO,
            lock_wait: acq.wait,
            io_queue: SimDuration::ZERO,
            done_at: acq.start + system,
        })
    }

    fn zero_fill(
        &mut self,
        now: SimTime,
        pid: Pid,
        vpn: Vpn,
        write: bool,
    ) -> Result<TouchResult, VmError> {
        let pidx = pid.0 as usize;
        let params = self.params;
        let (pfn, mem_wait, t_alloc) = self.alloc_frame_forcing(now, pid)?;
        let acq = self.procs[pidx]
            .lock
            .acquire(t_alloc, params.soft_fault_lock);
        let system = params.zero_fill_fault;
        self.install_page(pidx, pid, vpn, pfn, now, write);
        self.stats.proc_mut(pidx).zero_fills.bump();
        self.note_page(now, pid.0, vpn.0, EventKind::ZeroFill);
        self.refresh_shared(now, pid);
        Ok(TouchResult {
            kind: TouchKind::ZeroFill,
            system,
            resource_wait: mem_wait + acq.wait,
            io_wait: SimDuration::ZERO,
            lock_wait: acq.wait,
            io_queue: SimDuration::ZERO,
            done_at: acq.start + system,
        })
    }

    fn hard_fault(
        &mut self,
        now: SimTime,
        pid: Pid,
        vpn: Vpn,
        write: bool,
    ) -> Result<TouchResult, VmError> {
        let pidx = pid.0 as usize;
        let params = self.params;
        let slot = self.try_slot_for(pid, vpn)?;

        let (pfn, mem_wait, t_alloc) = self.alloc_frame_forcing(now, pid)?;
        let acq = self.procs[pidx]
            .lock
            .acquire(t_alloc, params.hard_fault_lock);
        let t_setup_done = acq.start + params.hard_fault_setup;
        // The read cannot start before any writeback of the frame's prior
        // content has finished.
        let clean_at = self.frames.get(pfn).clean_at;
        let io_start = if clean_at > t_setup_done {
            clean_at
        } else {
            t_setup_done
        };
        let io_done = self.swap.submit(io_start, slot, IoKind::Read);
        let done_at = io_done + params.hard_fault_finish;

        self.install_page(pidx, pid, vpn, pfn, now, write);
        {
            let e = self.procs[pidx].pt.entry(vpn);
            e.swap_slot = Some(slot);
        }
        self.stats.proc_mut(pidx).hard_faults.bump();
        self.note_page(now, pid.0, vpn.0, EventKind::HardFault);
        self.refresh_shared(now, pid);
        let io_wait = io_done.since(t_setup_done);
        Ok(TouchResult {
            kind: TouchKind::HardFault,
            system: params.hard_fault_setup + params.hard_fault_finish,
            resource_wait: mem_wait + acq.wait,
            io_wait,
            lock_wait: acq.wait,
            // Everything past the disk's own positioning + transfer was
            // queueing: any writeback wait before the read could start,
            // plus FIFO/bus/retry/tail delays inside the device.
            io_queue: io_wait.saturating_sub(self.swap.last_service()),
            done_at,
        })
    }

    /// Maps `pfn` at `vpn` valid and referenced; common install path.
    fn install_page(
        &mut self,
        pidx: usize,
        pid: Pid,
        vpn: Vpn,
        pfn: Pfn,
        now: SimTime,
        write: bool,
    ) {
        {
            let f = self.frames.get_mut(pfn);
            f.owner = Some((pid, vpn));
            f.dirty = false;
        }
        self.procs[pidx].pt.map(vpn, pfn);
        {
            let e = self.procs[pidx].pt.entry(vpn);
            e.valid = true;
            e.invalid_reason = None;
            e.dirty = write;
            e.last_ref = now;
            e.clock_sampled = false;
            e.hw_referenced = true;
            e.release_requested = None;
            e.materialized = true;
        }
        self.procs[pidx].tlb.touch(vpn);
        if let Some(pm) = self.procs[pidx].pm.as_mut() {
            pm.shared.set_resident(vpn, true);
        }
        self.stats.proc_mut(pidx).allocations.bump();
        self.quota.charge(pid.0);
        self.update_peak_rss(pidx);
    }

    fn update_peak_rss(&mut self, pidx: usize) {
        let rss = self.procs[pidx].pt.resident_pages();
        let s = self.stats.proc_mut(pidx);
        if rss > s.peak_rss {
            s.peak_rss = rss;
        }
    }

    /// The swap slot backing `(pid, vpn)`, assigning one if needed.
    ///
    /// # Panics
    ///
    /// Panics if the address is not in a mapped region.
    pub(crate) fn slot_for(&mut self, pid: Pid, vpn: Vpn) -> SwapSlot {
        self.try_slot_for(pid, vpn)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`VmSys::slot_for`].
    fn try_slot_for(&mut self, pid: Pid, vpn: Vpn) -> Result<SwapSlot, VmError> {
        let pidx = pid.0 as usize;
        if let Some(slot) = self.procs[pidx].pt.get(vpn).swap_slot {
            return Ok(slot);
        }
        let region = self
            .region_of(pid, vpn)
            .ok_or(VmError::UnmappedAddress { pid, vpn })?;
        let slot = match (region.backing, region.base_slot) {
            (Backing::SwapPrefilled, Some(base)) => SwapSlot(base.0 + region.range.offset_of(vpn)),
            _ => {
                let s = SwapSlot(self.next_swap_slot);
                self.next_swap_slot += 1;
                s
            }
        };
        self.procs[pidx].pt.entry(vpn).swap_slot = Some(slot);
        Ok(slot)
    }

    fn region_of(&self, pid: Pid, vpn: Vpn) -> Option<Region> {
        self.procs[pid.0 as usize]
            .regions
            .iter()
            .find(|r| r.range.contains(vpn))
            .cloned()
    }

    /// Allocates a frame, forcing paging-daemon activations inline if the
    /// free list is empty (the faulting process waits for the daemon).
    ///
    /// Returns `(frame, time stalled waiting for memory, allocation time)`,
    /// or [`VmError::OutOfMemory`] if repeated daemon activations cannot
    /// produce a free frame.
    fn alloc_frame_forcing(
        &mut self,
        now: SimTime,
        pid: Pid,
    ) -> Result<(Pfn, SimDuration, SimTime), VmError> {
        let mut t = now;
        let mut waited = SimDuration::ZERO;
        for _attempt in 0..64 {
            if let Some(pfn) = self.free.alloc(&mut self.frames) {
                if (self.free.live() as u64) < self.tun.min_freemem {
                    self.pagingd.request_wake();
                }
                return Ok((pfn, waited, t));
            }
            // Out of frames: the faulting process sleeps while the paging
            // daemon reclaims.
            let end = self.pagingd_activation(t, true);
            if end > t {
                waited += end.since(t);
                t = end;
            } else {
                // The daemon found nothing steal-worthy this pass; let
                // simulated time advance so sampled pages age.
                let step = self.tun.daemon_period;
                waited += step;
                t += step;
            }
        }
        if std::env::var_os("HOGTAME_DBG_OOM").is_some() {
            eprintln!("OOM for {pid}: free={}", self.free.live());
            for (i, p) in self.procs.iter().enumerate() {
                let mut pending = 0u64;
                let mut inflight = 0u64;
                let mut sampled = 0u64;
                let mut valid = 0u64;
                for (_vpn, e) in p.pt.iter() {
                    if e.release_requested.is_some() {
                        pending += 1;
                    }
                    if e.invalid_reason == Some(crate::pagetable::InvalidReason::Prefetched)
                        && e.arrives_at > t
                    {
                        inflight += 1;
                    }
                    if e.clock_sampled {
                        sampled += 1;
                    }
                    if e.valid {
                        valid += 1;
                    }
                }
                eprintln!(
                    "  pid{i}: rss={} cap={} guaranteed={} pending={pending} inflight={inflight} sampled={sampled} valid={valid}",
                    p.pt.resident_pages(),
                    self.quota.cap(i as u32, self.tun.maxrss),
                    self.quota.guaranteed(i as u32),
                );
            }
        }
        Err(VmError::OutOfMemory { pid })
    }

    // ------------------------------------------------------------------
    // PagingDirected operations.
    // ------------------------------------------------------------------

    /// Handles a prefetch request for `(pid, vpn)` arriving at `now`.
    ///
    /// Returns the outcome and the CPU cost charged to the calling thread
    /// (the run-time layer's prefetch pthread).
    pub fn prefetch(&mut self, now: SimTime, pid: Pid, vpn: Vpn) -> (PrefetchOutcome, SimDuration) {
        let pidx = pid.0 as usize;
        let cost = self.params.pm_prefetch_call;
        let pte = self.procs[pidx].pt.get(vpn);
        let stats = self.stats.proc_mut(pidx);
        stats.prefetch_requests.bump();

        if pte.resident() {
            self.stats.proc_mut(pidx).prefetch_redundant.bump();
            // Redundant prefetch: kernel work spent checking a page the
            // tenant already had. Debit its burst slack.
            self.quota.debit(pid.0, 1);
            self.note_page(now, pid.0, vpn.0, EventKind::PrefetchRedundant);
            return (PrefetchOutcome::AlreadyResident, cost);
        }

        // Quota gate: a tenant at or above its cap may not occupy more
        // frames asynchronously. Demand faults still succeed (the daemon
        // trims the tenant back afterwards), but prefetch — the cheap way
        // to graze the whole machine — stops at the contract line. Only
        // tenants with a registered quota are affected.
        if self.quota.quota(pid.0).is_some()
            && self.quota.charged(pid.0) >= self.quota.cap(pid.0, self.tun.maxrss)
        {
            self.stats.proc_mut(pidx).prefetch_quota_denied.bump();
            self.quota.debit(pid.0, 1);
            self.note_page(now, pid.0, vpn.0, EventKind::PrefetchQuotaDenied);
            self.refresh_shared(now, pid);
            return (PrefetchOutcome::Discarded, cost);
        }

        // A free-list rescue satisfies the prefetch without I/O.
        if self.tun.rescue_enabled {
            if let Some(pfn) = self.free.rescue(&mut self.frames, pid, vpn) {
                let source = self.frames.get(pfn).source;
                self.frames.get_mut(pfn).owner = Some((pid, vpn));
                self.install_prefetched(pidx, pid, vpn, pfn, now, now);
                match source {
                    FreeSource::Daemon => {
                        self.stats.freed.rescued_daemon.bump();
                        self.note_page(now, pid.0, vpn.0, EventKind::RescueDaemon);
                    }
                    FreeSource::Release => {
                        // Releasing a page and prefetching it right back
                        // wasted both hints' kernel work.
                        self.stats.freed.rescued_release.bump();
                        self.quota.debit(pid.0, 1);
                        self.note_page(now, pid.0, vpn.0, EventKind::RescueRelease);
                    }
                    _ => {}
                }
                self.stats.proc_mut(pidx).rescues.bump();
                self.note_page(now, pid.0, vpn.0, EventKind::PrefetchRescued);
                self.refresh_shared(now, pid);
                return (PrefetchOutcome::Rescued, cost);
            }
        }

        // "If there is no free memory, the request is discarded immediately":
        // prefetches never trigger stealing.
        if self.tun.prefetch_discard_when_low && (self.free.live() as u64) <= self.tun.min_freemem {
            self.stats.proc_mut(pidx).prefetch_discarded.bump();
            self.note_page(now, pid.0, vpn.0, EventKind::PrefetchDiscarded);
            self.refresh_shared(now, pid);
            return (PrefetchOutcome::Discarded, cost);
        }
        let Some(pfn) = self.free.alloc(&mut self.frames) else {
            self.stats.proc_mut(pidx).prefetch_discarded.bump();
            self.note_page(now, pid.0, vpn.0, EventKind::PrefetchDiscarded);
            return (PrefetchOutcome::Discarded, cost);
        };
        if (self.free.live() as u64) < self.tun.min_freemem {
            self.pagingd.request_wake();
        }

        let slot = self.slot_for(pid, vpn);
        let clean_at = self.frames.get(pfn).clean_at;
        let io_start = if clean_at > now { clean_at } else { now };
        let arrives_at = self.swap.submit(io_start, slot, IoKind::Read);
        self.frames.get_mut(pfn).owner = Some((pid, vpn));
        self.install_prefetched(pidx, pid, vpn, pfn, now, arrives_at);
        self.note_page(now, pid.0, vpn.0, EventKind::PrefetchStarted);
        self.refresh_shared(now, pid);
        (PrefetchOutcome::Started { arrives_at }, cost)
    }

    /// Installs a prefetched page: resident but *not validated* and *not in
    /// the TLB* (the PM's two deliberate differences from a page fault).
    fn install_prefetched(
        &mut self,
        pidx: usize,
        pid: Pid,
        vpn: Vpn,
        pfn: Pfn,
        now: SimTime,
        arrives_at: SimTime,
    ) {
        {
            let f = self.frames.get_mut(pfn);
            f.owner = Some((pid, vpn));
            f.dirty = false;
        }
        self.procs[pidx].pt.map(vpn, pfn);
        {
            let e = self.procs[pidx].pt.entry(vpn);
            e.valid = false;
            e.invalid_reason = Some(InvalidReason::Prefetched);
            e.arrives_at = arrives_at;
            e.dirty = false;
            e.last_ref = now;
            e.clock_sampled = false;
            e.release_requested = None;
            e.materialized = true;
            if e.swap_slot.is_none() {
                // Keep the slot assignment for the eventual writeback.
                e.swap_slot = None;
            }
        }
        if let Some(pm) = self.procs[pidx].pm.as_mut() {
            pm.shared.set_resident(vpn, true);
        }
        self.stats.proc_mut(pidx).allocations.bump();
        self.quota.charge(pid.0);
        self.update_peak_rss(pidx);
    }

    /// Handles a release request for a batch of pages at `now`.
    ///
    /// The PM clears the shared-page bits, invalidates the PTEs (so a
    /// re-reference is observable), and enqueues the pages for the releaser
    /// daemon. Returns enqueue accounting; the caller charges
    /// [`CostParams::pm_release_call`] per batch to the issuing thread.
    pub fn release(&mut self, now: SimTime, pid: Pid, vpns: &[Vpn]) -> ReleaseEnqueue {
        if !self.releaser_alive {
            // Dead releaser: the request is lost before any PTE or bitmap
            // state changes. Pages stay resident and valid; the paging
            // daemon reclaims them reactively (stock behaviour).
            return ReleaseEnqueue::default();
        }
        let pidx = pid.0 as usize;
        let mut out = ReleaseEnqueue::default();
        for &vpn in vpns {
            let pte = self.procs[pidx].pt.get(vpn);
            if !pte.resident() || pte.release_requested.is_some() {
                out.skipped_nonresident += 1;
                self.stats.releaser.skipped_nonresident.bump();
                self.note_page(now, pid.0, vpn.0, EventKind::ReleaseSkippedNonresident);
                continue;
            }
            // Releasing an in-flight prefetch would race its I/O; skip.
            if pte.invalid_reason == Some(InvalidReason::Prefetched) && pte.arrives_at > now {
                out.skipped_nonresident += 1;
                self.stats.releaser.skipped_nonresident.bump();
                self.note_page(now, pid.0, vpn.0, EventKind::ReleaseSkippedNonresident);
                continue;
            }
            {
                let e = self.procs[pidx].pt.entry(vpn);
                e.valid = false;
                e.invalid_reason = Some(InvalidReason::ReleasePending);
                e.release_requested = Some(now);
            }
            self.procs[pidx].tlb.invalidate(vpn);
            if let Some(pm) = self.procs[pidx].pm.as_mut() {
                pm.shared.set_resident(vpn, false);
            }
            self.releaser.enqueue(pid, vpn, now);
            self.stats.releaser.requests.bump();
            self.note_page(now, pid.0, vpn.0, EventKind::ReleaseAccepted);
            out.accepted += 1;
        }
        self.refresh_shared(now, pid);
        self.checked_sweep(now);
        out
    }

    /// Frees one resident page (shared by the daemons).
    ///
    /// Initiates writeback if dirty; the frame lands at the free-list tail,
    /// rescuable. Returns the writeback completion time, if any.
    pub(crate) fn free_page(
        &mut self,
        t: SimTime,
        pid: Pid,
        vpn: Vpn,
        source: FreeSource,
    ) -> Option<SimTime> {
        let pidx = pid.0 as usize;
        let dirty = self.procs[pidx].pt.get(vpn).dirty;
        let mut clean_at = None;
        let slot_for_wb = if dirty {
            Some(self.slot_for(pid, vpn))
        } else {
            None
        };
        let pfn = self.procs[pidx].pt.unmap(vpn);
        self.procs[pidx].tlb.invalidate(vpn);
        if let Some(pm) = self.procs[pidx].pm.as_mut() {
            pm.shared.set_resident(vpn, false);
        }
        {
            let f = self.frames.get_mut(pfn);
            f.owner = Some((pid, vpn));
            f.source = source;
            if let Some(slot) = slot_for_wb {
                let done = self.swap.submit(t, slot, IoKind::Write);
                f.clean_at = done;
                f.dirty = false;
                clean_at = Some(done);
            } else {
                f.dirty = false;
            }
        }
        // The page's swap copy is now current; mark the PTE clean.
        self.procs[pidx].pt.entry(vpn).dirty = false;
        let rescuable = self.tun.rescue_enabled
            && (source != FreeSource::Release || self.tun.released_pages_rescuable);
        self.free.push_freed(&mut self.frames, pfn, rescuable);
        self.quota.uncharge(pid.0);
        match source {
            FreeSource::Daemon => {
                self.stats.freed.freed_by_daemon.bump();
                self.stats.proc_mut(pidx).pages_stolen.bump();
                self.note_page(t, pid.0, vpn.0, EventKind::FreedByDaemon);
            }
            FreeSource::Release => {
                self.stats.freed.freed_by_release.bump();
                self.stats.proc_mut(pidx).pages_released.bump();
                // The release did its job: a frame actually came back.
                self.quota.credit(pid.0, 1);
                self.note_page(t, pid.0, vpn.0, EventKind::FreedByRelease);
            }
            _ => {}
        }
        clean_at
    }

    // ------------------------------------------------------------------
    // Daemon driving (engine-facing).
    // ------------------------------------------------------------------

    /// Whether the paging daemon has work (low free memory, an over-limit
    /// process, or an explicit wake request).
    pub fn pagingd_needed(&self) -> bool {
        (self.free.live() as u64) < self.tun.min_freemem
            || self.pagingd.wake_requested()
            || self.over_limit_pid().is_some()
    }

    /// The process exceeding its cap (`maxrss`, tightened by any tenant
    /// quota), if any (the daemon trims it first).
    pub(crate) fn over_limit_pid(&self) -> Option<Pid> {
        self.procs
            .iter()
            .enumerate()
            .find(|(i, p)| p.pt.resident_pages() > self.quota.cap(*i as u32, self.tun.maxrss))
            .map(|(i, _)| Pid(i as u32))
    }

    /// Runs one paging-daemon activation at `now`; returns the next wake
    /// time if memory pressure persists.
    pub fn service_pagingd(&mut self, now: SimTime) -> Option<SimTime> {
        self.pagingd.clear_wake();
        if !((self.free.live() as u64) < self.tun.min_freemem || self.over_limit_pid().is_some()) {
            return None;
        }
        let end = self.pagingd_activation(now, false);
        if self.pagingd_needed() {
            let period = self.tun.daemon_period;
            Some(end.max(now) + period)
        } else {
            None
        }
    }

    /// Whether the releaser has queued work (always false while dead).
    pub fn releaser_pending(&self) -> bool {
        self.releaser_alive && !self.releaser.is_empty()
    }

    /// Whether the releaser daemon is alive (crash injection can kill it).
    pub fn releaser_alive(&self) -> bool {
        self.releaser_alive
    }

    /// Marks the releaser daemon dead (crash) or back in service
    /// (restart). Killing it does not touch its queue; restart-time
    /// reconciliation ([`VmSys::reconcile_releaser`]) decides what
    /// survives.
    pub fn set_releaser_alive(&mut self, alive: bool) {
        self.releaser_alive = alive;
    }

    /// Reconciles releaser state after a supervised restart (or after the
    /// supervisor abandons the daemon): the queue the dead daemon held is
    /// dropped — its requests are stale — and every PTE still marked
    /// release-pending is revalidated, with its shared-bitmap bit
    /// re-derived from page-table residency. Returns `(orphaned queue
    /// entries dropped, bitmap bits fixed up)`.
    pub fn reconcile_releaser(&mut self, now: SimTime) -> (u64, u64) {
        let orphaned = self.releaser.clear() as u64;
        let mut fixups = 0u64;
        for pidx in 0..self.procs.len() {
            let stranded: Vec<Vpn> = self.procs[pidx]
                .pt
                .iter()
                .filter(|(_, pte)| {
                    pte.resident() && pte.invalid_reason == Some(InvalidReason::ReleasePending)
                })
                .map(|(&vpn, _)| vpn)
                .collect();
            if stranded.is_empty() {
                continue;
            }
            for vpn in stranded {
                self.procs[pidx].pt.entry(vpn).release_requested = None;
                self.validate_pte(pidx, vpn, now);
                if let Some(pm) = self.procs[pidx].pm.as_mut() {
                    if !pm.shared.is_resident(vpn) {
                        fixups += 1;
                    }
                    pm.shared.set_resident(vpn, true);
                }
            }
            self.refresh_shared(now, Pid(pidx as u32));
        }
        (orphaned, fixups)
    }

    /// Enables/disables the kernel-activity flight recorder.
    pub fn set_trace_enabled(&mut self, enabled: bool) {
        self.obs.set_enabled(enabled);
    }

    /// Read access to the kernel-activity flight recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    // ------------------------------------------------------------------
    // Checked mode: invariant probes + lockstep oracle.
    // ------------------------------------------------------------------

    /// Enables checked mode: invariant probes fire at every daemon
    /// activation and release batch, and a fresh lockstep
    /// [`Oracle`] starts consuming the kernel event stream. Purely
    /// observational — a checked run's simulated outcome is bit-identical
    /// to an unchecked one. Call before any process is registered (the
    /// oracle models the machine from its pristine state).
    pub fn set_checked(&mut self, enabled: bool) {
        self.checked = enabled;
        if enabled {
            self.oracle =
                Some(Oracle::new(self.frames.len() as u64).with_interval(Oracle::env_interval()));
            self.checked_hand = Some(self.pagingd.hand());
        } else {
            self.oracle = None;
            self.checked_hand = None;
            self.checked_shadow.clear();
        }
    }

    /// Whether checked mode is enabled.
    pub fn checked(&self) -> bool {
        self.checked
    }

    /// Records a page-attributed kernel event; in checked mode the same
    /// event feeds the lockstep oracle's residency model.
    pub(crate) fn note_page(&mut self, at: SimTime, pid: u32, vpn: u64, kind: EventKind) {
        if self.checked && !self.oracle_mute {
            if let Some(o) = self.oracle.as_mut() {
                o.apply_page(pid, vpn, &kind);
            }
        }
        self.obs.emit_page(at, pid, vpn, kind);
    }

    /// Records a kernel event with no page attribution; in checked mode
    /// the oracle tracks the clock hand from the paging daemon's scans.
    pub(crate) fn note(&mut self, at: SimTime, kind: EventKind) {
        if self.checked {
            if let Some(o) = self.oracle.as_mut() {
                o.apply(&kind);
            }
        }
        self.obs.emit(at, kind);
    }

    /// Remembers where the clock hand parked at the end of an activation
    /// (the monotonicity probe asserts nothing else moves it).
    pub(crate) fn checked_park_hand(&mut self) {
        if self.checked {
            self.checked_hand = Some(self.pagingd.hand());
        }
    }

    /// Raises a checked-mode violation with this subsystem's
    /// flight-recorder tail attached.
    pub(crate) fn checked_fail(&self, at: SimTime, invariant: &'static str, detail: String) -> ! {
        InvariantViolation {
            at,
            subsystem: "vm",
            invariant,
            detail,
            tail: self.obs.dump_tail(16),
        }
        .raise()
    }

    /// Runs every whole-system invariant probe: clock-hand position,
    /// frame conservation, per-process page-table ⇄ frame ⇄ bitmap ⇄
    /// Eq. 1 agreement, and — when a lockstep diff is due — the oracle's
    /// residency and clock models. One branch when checked mode is off.
    pub(crate) fn checked_sweep(&mut self, now: SimTime) {
        if !self.checked {
            return;
        }
        if let Some(hand) = self.checked_hand {
            let live = self.pagingd.hand();
            if hand != live {
                self.checked_fail(
                    now,
                    "clock_hand_monotonic",
                    format!(
                        "clock hand moved outside an activation: parked at {hand}, live {live}"
                    ),
                );
            }
        }
        let free = self.free.live();
        let allocated = self.frames.allocated_count();
        let total = self.frames.len();
        if free + allocated != total {
            self.checked_fail(
                now,
                "frame_conservation",
                format!("free {free} + allocated {allocated} != total {total}"),
            );
        }
        for pidx in 0..self.procs.len() {
            self.checked_sweep_proc(now, pidx);
        }
        if self.oracle.as_mut().is_some_and(Oracle::due) {
            self.checked_diff_oracle(now);
        }
    }

    /// Per-process probes of one sweep (see [`VmSys::checked_sweep`]).
    fn checked_sweep_proc(&self, now: SimTime, pidx: usize) {
        let p = &self.procs[pidx];
        let cached = p.pt.resident_pages();
        let recount = p.pt.iter().filter(|(_, pte)| pte.resident()).count() as u64;
        if cached != recount {
            self.checked_fail(
                now,
                "eq1_usage_recount",
                format!(
                    "pid {pidx}: cached resident count {cached} != page-table recount {recount}"
                ),
            );
        }
        let charged = self.quota.charged(pidx as u32);
        if charged != recount {
            self.checked_fail(
                now,
                "quota_conservation",
                format!(
                    "pid {pidx}: quota ledger charges {charged} frames but page-table recount is {recount}"
                ),
            );
        }
        for (&vpn, pte) in p.pt.iter() {
            if let Some(pfn) = pte.pfn {
                let f = self.frames.get(pfn);
                if f.on_free_list {
                    self.checked_fail(
                        now,
                        "frame_ownership",
                        format!(
                            "pid {pidx} vpn {} maps frame {} that sits on the free list",
                            vpn.0, pfn.0
                        ),
                    );
                }
                if f.owner != Some((Pid(pidx as u32), vpn)) {
                    self.checked_fail(
                        now,
                        "frame_ownership",
                        format!(
                            "pid {pidx} vpn {} maps frame {} owned by {:?}",
                            vpn.0, pfn.0, f.owner
                        ),
                    );
                }
            }
            if let Some(pm) = p.pm.as_ref() {
                if pm.shared.covers(vpn) {
                    let want = pte.resident() && pte.release_requested.is_none();
                    if pm.shared.is_resident(vpn) != want {
                        self.checked_fail(
                            now,
                            "bitmap_agreement",
                            format!(
                                "pid {pidx} vpn {}: bitmap bit {} but page table implies {}",
                                vpn.0,
                                pm.shared.is_resident(vpn),
                                want
                            ),
                        );
                    }
                }
            }
        }
        if let Some(pm) = p.pm.as_ref() {
            if let Some(&(u, l)) = self.checked_shadow.get(&(pidx as u32)) {
                if (pm.shared.usage_word, pm.shared.limit_word) != (u, l) {
                    self.checked_fail(
                        now,
                        "eq1_accounting",
                        format!(
                            "pid {pidx}: shared words ({}, {}) diverged from the last refresh ({u}, {l})",
                            pm.shared.usage_word, pm.shared.limit_word
                        ),
                    );
                }
            }
        }
    }

    /// Diffs the live state against the lockstep oracle.
    fn checked_diff_oracle(&self, now: SimTime) {
        let Some(o) = self.oracle.as_ref() else {
            return;
        };
        for pidx in 0..self.procs.len() {
            let live = self.procs[pidx].pt.resident_pages();
            let model = o.resident_count(pidx as u32);
            if live != model {
                self.checked_fail(
                    now,
                    "oracle_residency",
                    format!("pid {pidx}: live resident pages {live} != oracle model {model}"),
                );
            }
        }
        let live_free = self.free.live() as u64;
        if o.free_frames() != live_free {
            self.checked_fail(
                now,
                "oracle_residency",
                format!(
                    "oracle free-frame model {} != live free list {live_free}",
                    o.free_frames()
                ),
            );
        }
        let live_hand = self.pagingd.hand() as u64;
        if o.hand() != live_hand {
            self.checked_fail(
                now,
                "oracle_clock",
                format!(
                    "oracle clock-hand model {} != live hand {live_hand}",
                    o.hand()
                ),
            );
        }
    }

    /// Applies a VM-targeted seeded state corruption (the sanitizer
    /// self-test matrix; see [`Mutation`]). `pid` is the process whose
    /// state gets corrupted. Mutations targeting other subsystems are
    /// ignored here. Test plumbing only — no production path calls this.
    pub fn apply_mutation(&mut self, now: SimTime, m: Mutation, pid: Pid) {
        let pidx = pid.0 as usize;
        match m {
            Mutation::FlipBitmapBit => {
                let p = &self.procs[pidx];
                let target =
                    p.pt.iter()
                        .filter(|(_, pte)| pte.resident() && pte.release_requested.is_none())
                        .map(|(&v, _)| v)
                        .filter(|&v| p.pm.as_ref().is_some_and(|pm| pm.shared.covers(v)))
                        .min();
                if let (Some(vpn), Some(pm)) = (target, self.procs[pidx].pm.as_mut()) {
                    let bit = pm.shared.is_resident(vpn);
                    pm.shared.set_resident(vpn, !bit);
                }
            }
            Mutation::TamperUsageWord => {
                if let Some(pm) = self.procs[pidx].pm.as_mut() {
                    pm.shared.usage_word = pm.shared.usage_word.wrapping_add(7);
                }
            }
            Mutation::TamperLimitWord => {
                if let Some(pm) = self.procs[pidx].pm.as_mut() {
                    pm.shared.limit_word = pm.shared.limit_word.wrapping_add(7);
                }
            }
            Mutation::SkipUsageDecrement => {
                self.procs[pidx].pt.corrupt_resident_count();
            }
            Mutation::LeakFrame => {
                self.free.corrupt_leak_frame(&self.frames);
            }
            Mutation::DoubleFreeFrame => {
                let target = self.procs[pidx]
                    .pt
                    .iter()
                    .filter(|(_, pte)| pte.resident())
                    .map(|(&v, pte)| (v, pte.pfn))
                    .min();
                if let Some((_, Some(pfn))) = target {
                    self.free.push_freed(&mut self.frames, pfn, false);
                }
            }
            Mutation::WarpClockHand => {
                self.pagingd.corrupt_warp_hand(self.frames.len());
            }
            Mutation::ReleaseInflightPrefetch => {
                let target = self.procs[pidx]
                    .pt
                    .iter()
                    .filter(|(_, pte)| pte.resident() && pte.release_requested.is_none())
                    .map(|(&v, _)| v)
                    .min();
                if let Some(vpn) = target {
                    {
                        let e = self.procs[pidx].pt.entry(vpn);
                        e.valid = false;
                        e.invalid_reason = Some(InvalidReason::Prefetched);
                        e.arrives_at = now + SimDuration::from_secs(1000);
                        e.release_requested = Some(now);
                        e.last_ref = SimTime::ZERO;
                    }
                    // Keep the bitmap consistent so only the in-flight
                    // probe (not bitmap_agreement) can fire.
                    if let Some(pm) = self.procs[pidx].pm.as_mut() {
                        pm.shared.set_resident(vpn, false);
                    }
                    self.releaser.enqueue(pid, vpn, now);
                }
            }
            Mutation::StealthFree => {
                let target = self.procs[pidx]
                    .pt
                    .iter()
                    .filter(|(_, pte)| pte.resident() && pte.release_requested.is_none())
                    .map(|(&v, _)| v)
                    .min();
                if let Some(vpn) = target {
                    self.oracle_mute = true;
                    self.free_page(now, pid, vpn, FreeSource::Daemon);
                    self.oracle_mute = false;
                }
            }
            // Runtime- and disk-targeted mutations are applied by their
            // own subsystems.
            Mutation::ReorderReleaseQueue
            | Mutation::FilterPassthrough
            | Mutation::DoubleCompleteIo
            | Mutation::BustRetryBudget => {}
        }
    }

    /// Tears down a finished process: every resident page returns to the
    /// free list (not rescuable — the address space is gone), pending
    /// reactive candidates are dropped. RSS becomes zero.
    pub fn exit_process(&mut self, now: SimTime, pid: Pid) {
        let pidx = pid.0 as usize;
        let mut vpns: Vec<Vpn> = self.procs[pidx]
            .pt
            .iter()
            .filter(|(_, pte)| pte.resident())
            .map(|(&vpn, _)| vpn)
            .collect();
        // The page table is a HashMap; freeing in its iteration order
        // would push frames onto the free list in a run-to-run random
        // sequence, and under memory pressure the pfn order leaks into
        // which frames later steals visit first. Sort so exits (normal,
        // shed, or OOM kill) leave bit-reproducible state behind.
        vpns.sort_unstable();
        for vpn in vpns {
            let pfn = self.procs[pidx].pt.unmap(vpn);
            self.procs[pidx].tlb.invalidate(vpn);
            if let Some(pm) = self.procs[pidx].pm.as_mut() {
                pm.shared.set_resident(vpn, false);
            }
            {
                let f = self.frames.get_mut(pfn);
                f.owner = None;
                f.dirty = false;
                f.source = FreeSource::Unmap;
            }
            self.free.push_freed(&mut self.frames, pfn, false);
            self.quota.uncharge(pid.0);
        }
        self.reactive.remove(&pid);
        if let Some(o) = self.oracle.as_mut() {
            o.exit(pid.0);
        }
        self.checked_sweep(now);
    }

    /// Registers pages the application is willing to surrender when the OS
    /// reclaims from it (the reactive alternative of §2.2: "the OS notifies
    /// the application when one or more of its pages is about to be
    /// reclaimed; the application can then implement its own replacement
    /// policy by telling the system which pages to take").
    pub fn offer_eviction_candidates(&mut self, pid: Pid, vpns: &[Vpn]) {
        let q = self.reactive.entry(pid).or_default();
        q.extend(vpns.iter().copied());
    }

    /// Depth of a process's reactive candidate queue (diagnostics).
    pub fn reactive_candidates(&self, pid: Pid) -> usize {
        self.reactive.get(&pid).map_or(0, VecDeque::len)
    }

    /// Whether `(pid, vpn)` is resident — inspection hook for invariant
    /// tests.
    pub fn page_resident_for_test(&self, pid: Pid, vpn: Vpn) -> bool {
        self.procs[pid.0 as usize].pt.get(vpn).resident()
    }

    /// Whether `(pid, vpn)` has a release request pending — inspection hook
    /// for invariant tests.
    pub fn release_pending_for_test(&self, pid: Pid, vpn: Vpn) -> bool {
        self.procs[pid.0 as usize]
            .pt
            .get(vpn)
            .release_requested
            .is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::TouchKind;

    fn small_vm() -> VmSys {
        let mut tun = Tunables::for_memory(64);
        tun.min_freemem = 4;
        tun.target_freemem = 8;
        VmSys::new(64, tun, CostParams::default(), SwapConfig::test_array())
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn try_touch_reports_unmapped_addresses() {
        let mut vm = small_vm();
        let pid = vm.add_process(false);
        let r = vm.map_region(pid, 8, Backing::ZeroFill, false);
        let bogus = r.start.offset(1_000_000);
        assert_eq!(
            vm.try_touch(t(1), pid, bogus, false).unwrap_err(),
            VmError::UnmappedAddress { pid, vpn: bogus }
        );
        assert!(vm.try_touch(t(1), pid, r.start, false).is_ok());
    }

    #[test]
    #[should_panic(expected = "touched unmapped address")]
    fn touch_unmapped_panics() {
        let mut vm = small_vm();
        let pid = vm.add_process(false);
        vm.touch(t(1), pid, Vpn(u64::MAX), false);
    }

    #[test]
    fn zero_fill_then_hit() {
        let mut vm = small_vm();
        let pid = vm.add_process(false);
        let r = vm.map_region(pid, 8, Backing::ZeroFill, false);
        let first = vm.touch(t(1), pid, r.start, false);
        assert_eq!(first.kind, TouchKind::ZeroFill);
        assert!(first.done_at > t(1));
        let second = vm.touch(first.done_at, pid, r.start, false);
        assert_eq!(second.kind, TouchKind::Hit);
        assert_eq!(vm.rss(pid), 1);
    }

    #[test]
    fn swap_prefilled_first_touch_is_hard_fault() {
        let mut vm = small_vm();
        let pid = vm.add_process(false);
        let r = vm.map_region(pid, 8, Backing::SwapPrefilled, false);
        let res = vm.touch(t(1), pid, r.start, false);
        assert_eq!(res.kind, TouchKind::HardFault);
        assert!(res.io_wait > SimDuration::ZERO);
        assert_eq!(vm.stats().proc(pid.0 as usize).hard_faults.get(), 1);
    }

    #[test]
    fn tlb_miss_costs_refill() {
        // Big enough that 66 touches cause no memory pressure.
        let mut vm = VmSys::new(
            256,
            Tunables::for_memory(256),
            CostParams::default(),
            SwapConfig::test_array(),
        );
        let pid = vm.add_process(false);
        let r = vm.map_region(pid, 70, Backing::ZeroFill, false);
        // Touch 66 distinct pages to overflow the 64-entry TLB, then
        // re-touch the first: resident + valid but TLB-evicted.
        let mut now = t(1);
        for i in 0..66 {
            now = vm.touch(now, pid, r.start.offset(i), false).done_at;
        }
        let res = vm.touch(now, pid, r.start, false);
        assert_eq!(res.kind, TouchKind::TlbMiss);
        assert_eq!(res.system, vm.cost_params().tlb_refill);
    }

    #[test]
    fn prefetch_then_touch_validates() {
        let mut vm = small_vm();
        let pid = vm.add_process(true);
        let r = vm.map_region(pid, 8, Backing::SwapPrefilled, true);
        let (out, _) = vm.prefetch(t(1), pid, r.start);
        let arrives = match out {
            PrefetchOutcome::Started { arrives_at } => arrives_at,
            other => panic!("expected Started, got {other:?}"),
        };
        assert!(vm.pm_resident(pid, r.start), "bitmap set at request time");
        // Touch long after arrival: validation only, no I/O stall.
        let res = vm.touch(arrives + SimDuration::from_secs(1), pid, r.start, false);
        assert_eq!(res.kind, TouchKind::PrefetchValidate);
        assert_eq!(res.io_wait, SimDuration::ZERO);
    }

    #[test]
    fn touch_before_prefetch_arrival_stalls() {
        let mut vm = small_vm();
        let pid = vm.add_process(true);
        let r = vm.map_region(pid, 8, Backing::SwapPrefilled, true);
        let (out, _) = vm.prefetch(t(1), pid, r.start);
        let arrives = match out {
            PrefetchOutcome::Started { arrives_at } => arrives_at,
            other => panic!("unexpected {other:?}"),
        };
        let res = vm.touch(t(1), pid, r.start, false);
        assert_eq!(res.kind, TouchKind::PrefetchValidate);
        assert_eq!(res.io_wait, arrives.since(t(1)));
    }

    #[test]
    fn prefetch_discarded_when_memory_low() {
        let mut vm = small_vm();
        let pid = vm.add_process(true);
        let r = vm.map_region(pid, 64, Backing::SwapPrefilled, true);
        // Consume frames until free <= min_freemem.
        let mut now = t(1);
        let mut i = 0;
        while vm.free_pages() > vm.tunables().min_freemem {
            now = vm.touch(now, pid, r.start.offset(i), false).done_at;
            i += 1;
        }
        let (out, _) = vm.prefetch(now, pid, r.start.offset(i + 1));
        assert_eq!(out, PrefetchOutcome::Discarded);
        assert!(vm.stats().proc(pid.0 as usize).prefetch_discarded.get() >= 1);
    }

    #[test]
    fn redundant_prefetch_detected() {
        let mut vm = small_vm();
        let pid = vm.add_process(true);
        let r = vm.map_region(pid, 8, Backing::SwapPrefilled, true);
        let done = vm.touch(t(1), pid, r.start, false).done_at;
        let (out, _) = vm.prefetch(done, pid, r.start);
        assert_eq!(out, PrefetchOutcome::AlreadyResident);
    }

    #[test]
    fn release_invalidates_and_enqueues() {
        let mut vm = small_vm();
        let pid = vm.add_process(true);
        let r = vm.map_region(pid, 8, Backing::SwapPrefilled, true);
        let done = vm.touch(t(1), pid, r.start, false).done_at;
        let enq = vm.release(done, pid, &[r.start]);
        assert_eq!(enq.accepted, 1);
        assert!(!vm.pm_resident(pid, r.start), "bit cleared at request time");
        assert!(vm.releaser_pending());
        // A touch before the releaser runs cancels the release.
        let res = vm.touch(done + SimDuration::from_micros(10), pid, r.start, false);
        assert_eq!(res.kind, TouchKind::SoftFaultRelease);
        assert!(vm.pm_resident(pid, r.start), "bit restored by re-reference");
    }

    #[test]
    fn release_of_nonresident_is_skipped() {
        let mut vm = small_vm();
        let pid = vm.add_process(true);
        let r = vm.map_region(pid, 8, Backing::SwapPrefilled, true);
        let enq = vm.release(t(1), pid, &[r.start]);
        assert_eq!(enq.accepted, 0);
        assert_eq!(enq.skipped_nonresident, 1);
    }

    #[test]
    fn shared_view_is_lazy() {
        let mut vm = small_vm();
        let pid = vm.add_process(true);
        let r = vm.map_region(pid, 8, Backing::SwapPrefilled, true);
        // Before any activity the words are zero.
        let v0 = vm.shared_view(pid).unwrap();
        assert_eq!(v0.usage, 0);
        let done = vm.touch(t(1), pid, r.start, false).done_at;
        let v1 = vm.shared_view(pid).unwrap();
        assert_eq!(v1.usage, 1);
        assert!(v1.limit > 0);
        let _ = done;
    }

    #[test]
    fn eq1_limit_reflects_free_memory() {
        let mut vm = small_vm();
        let pid = vm.add_process(true);
        let r = vm.map_region(pid, 8, Backing::SwapPrefilled, true);
        vm.touch(t(1), pid, r.start, false);
        let v = vm.shared_view(pid).unwrap();
        // usage + free - min_freemem, capped by maxrss.
        let expect = (1 + vm.free_pages() - vm.tunables().min_freemem).min(vm.tunables().maxrss);
        assert_eq!(v.limit, expect);
    }

    #[test]
    fn forced_reclaim_when_out_of_memory() {
        let mut vm = small_vm();
        let pid = vm.add_process(false);
        let r = vm.map_region(pid, 200, Backing::SwapPrefilled, false);
        // Touch more pages than exist: the daemon must reclaim inline.
        let mut now = t(1);
        for i in 0..100 {
            let res = vm.touch(now, pid, r.start.offset(i), false);
            now = res.done_at;
        }
        assert_eq!(vm.rss(pid) + vm.free_pages(), 64, "frames conserved");
        assert!(vm.stats().pagingd.pages_stolen.get() > 0);
        assert!(vm.stats().pagingd.activations.get() > 0);
    }

    #[test]
    fn write_marks_dirty_and_evict_writes_back() {
        let mut vm = small_vm();
        let pid = vm.add_process(false);
        let r = vm.map_region(pid, 200, Backing::ZeroFill, false);
        let mut now = t(1);
        for i in 0..100 {
            let res = vm.touch(now, pid, r.start.offset(i), true);
            now = res.done_at;
        }
        assert!(
            vm.swap().stats().page_writes.get() > 0,
            "dirty steals must write back"
        );
    }

    #[test]
    fn recorder_captures_daemon_activity() {
        let mut vm = small_vm();
        vm.set_trace_enabled(true);
        let pid = vm.add_process(true);
        let r = vm.map_region(pid, 64, Backing::SwapPrefilled, true);
        let mut now = t(1);
        for i in 0..62 {
            now = vm.touch(now, pid, r.start.offset(i), false).done_at;
        }
        assert!(vm.pagingd_needed(), "62 of 64 frames used");
        vm.service_pagingd(now);
        vm.release(now, pid, &[r.start, r.start.offset(1)]);
        vm.service_releaser(now + SimDuration::from_millis(1));
        let rec = vm.recorder();
        assert!(rec.count("pagingd_scan") >= 1, "counts: {:?}", rec.counts());
        assert_eq!(rec.count("releaser_batch"), 1, "counts: {:?}", rec.counts());
        assert_eq!(rec.count("hard_fault"), 62);
        assert_eq!(rec.count("release_accepted"), 2);
        assert_eq!(
            rec.count("freed_by_release"),
            vm.stats().releaser.pages_released.get()
        );
        assert_eq!(
            rec.count("freed_by_daemon"),
            vm.stats().freed.freed_by_daemon.get()
        );
    }

    #[test]
    fn disabled_recorder_stays_empty_and_changes_nothing() {
        let run = |observed: bool| {
            let mut vm = small_vm();
            vm.set_trace_enabled(observed);
            let pid = vm.add_process(true);
            let r = vm.map_region(pid, 64, Backing::SwapPrefilled, true);
            let mut now = t(1);
            for i in 0..62 {
                now = vm.touch(now, pid, r.start.offset(i), false).done_at;
            }
            vm.service_pagingd(now);
            vm.release(now, pid, &[r.start]);
            let end = vm.service_releaser(now + SimDuration::from_millis(1));
            (
                end,
                vm.free_pages(),
                vm.stats().freed.freed_by_daemon.get(),
                vm.recorder().total(),
            )
        };
        let (end_a, free_a, daemon_a, total_a) = run(false);
        let (end_b, free_b, daemon_b, total_b) = run(true);
        assert_eq!(total_a, 0, "disabled recorder records nothing");
        assert!(total_b > 0);
        // Observation must not perturb the simulation.
        assert_eq!(end_a, end_b);
        assert_eq!(free_a, free_b);
        assert_eq!(daemon_a, daemon_b);
    }

    #[test]
    fn exit_process_returns_all_frames() {
        let mut vm = small_vm();
        let pid = vm.add_process(true);
        let r = vm.map_region(pid, 32, Backing::SwapPrefilled, true);
        let mut now = t(1);
        for i in 0..20 {
            now = vm.touch(now, pid, r.start.offset(i), true).done_at;
        }
        assert_eq!(vm.rss(pid), 20);
        vm.exit_process(now, pid);
        assert_eq!(vm.rss(pid), 0);
        assert_eq!(vm.free_pages(), 64);
        // Exited pages are not rescuable: a (hypothetical) re-touch would
        // hard-fault, not rescue.
        let res = vm.touch(now + SimDuration::from_millis(1), pid, r.start, false);
        assert_eq!(res.kind, TouchKind::HardFault);
    }

    #[test]
    fn release_of_inflight_prefetch_is_skipped() {
        let mut vm = small_vm();
        let pid = vm.add_process(true);
        let r = vm.map_region(pid, 8, Backing::SwapPrefilled, true);
        let (out, _) = vm.prefetch(t(1), pid, r.start);
        assert!(matches!(out, PrefetchOutcome::Started { .. }));
        // Release while the I/O is still in flight: refused.
        let enq = vm.release(t(1), pid, &[r.start]);
        assert_eq!(enq.accepted, 0);
        assert_eq!(enq.skipped_nonresident, 1);
    }

    #[test]
    fn double_release_of_same_page_is_idempotent() {
        let mut vm = small_vm();
        let pid = vm.add_process(true);
        let r = vm.map_region(pid, 8, Backing::SwapPrefilled, true);
        let done = vm.touch(t(1), pid, r.start, false).done_at;
        let first = vm.release(done, pid, &[r.start]);
        assert_eq!(first.accepted, 1);
        let second = vm.release(done + SimDuration::from_micros(1), pid, &[r.start]);
        assert_eq!(second.accepted, 0, "already pending");
        vm.service_releaser(done + SimDuration::from_millis(1));
        assert_eq!(vm.stats().releaser.pages_released.get(), 1);
        assert_eq!(vm.rss(pid), 0);
    }

    #[test]
    fn prefetch_rescues_from_free_list() {
        let mut vm = small_vm();
        let pid = vm.add_process(true);
        let r = vm.map_region(pid, 8, Backing::SwapPrefilled, true);
        let done = vm.touch(t(1), pid, r.start, false).done_at;
        vm.release(done, pid, &[r.start]);
        vm.service_releaser(done + SimDuration::from_micros(500));
        assert_eq!(vm.rss(pid), 0);
        // A later prefetch finds the frame still on the free list: no I/O.
        let reads_before = vm.swap().stats().page_reads.get();
        let (out, _) = vm.prefetch(t(100), pid, r.start);
        assert_eq!(out, PrefetchOutcome::Rescued);
        assert_eq!(vm.swap().stats().page_reads.get(), reads_before);
        assert!(vm.pm_resident(pid, r.start));
    }

    #[test]
    fn zero_fill_page_written_then_stolen_hard_faults_back() {
        let mut vm = small_vm();
        let pid = vm.add_process(false);
        let r = vm.map_region(pid, 200, Backing::ZeroFill, false);
        // Write page 0 so it has content, then flood memory to evict it.
        let mut now = vm.touch(t(1), pid, r.start, true).done_at;
        for i in 1..120 {
            now = vm.touch(now, pid, r.start.offset(i), true).done_at;
        }
        // Run the daemon until page 0 is gone (two passes after sampling).
        for _ in 0..8 {
            now = vm.pagingd_activation(now, false).max(now) + SimDuration::from_millis(1);
        }
        let res = vm.touch(now + SimDuration::from_secs(1), pid, r.start, false);
        assert!(
            matches!(res.kind, TouchKind::HardFault | TouchKind::Rescue(_)),
            "dirty zero-fill content must come back from swap or rescue, got {:?}",
            res.kind
        );
        if res.kind == TouchKind::HardFault {
            assert!(
                vm.swap().stats().page_writes.get() > 0,
                "writeback happened"
            );
        }
    }

    #[test]
    fn lock_contention_inflates_fault_time() {
        // Arrange a daemon activation, then fault immediately: the fault
        // must wait for the daemon's lock hold.
        let mut vm = small_vm();
        let pid = vm.add_process(false);
        let r = vm.map_region(pid, 200, Backing::SwapPrefilled, false);
        let mut now = t(1);
        for i in 0..61 {
            now = vm.touch(now, pid, r.start.offset(i), false).done_at;
        }
        assert!(vm.pagingd_needed(), "free = 3 < min_freemem = 4");
        // Daemon activates "now" and holds the AS lock into the future.
        vm.pagingd_activation(now, false);
        let res = vm.touch(now, pid, r.start.offset(61), false);
        assert!(
            res.resource_wait > SimDuration::ZERO,
            "fault during the daemon's lock hold must wait"
        );
    }

    #[test]
    fn dead_releaser_drops_requests_and_reconcile_restores_state() {
        let mut vm = small_vm();
        let pid = vm.add_process(true);
        let r = vm.map_region(pid, 8, Backing::SwapPrefilled, true);
        let mut now = t(1);
        for i in 0..4 {
            now = vm.touch(now, pid, r.start.offset(i), false).done_at;
        }
        // One release enqueued while alive, then the daemon dies.
        let enq = vm.release(now, pid, &[r.start]);
        assert_eq!(enq.accepted, 1);
        vm.set_releaser_alive(false);
        assert!(!vm.releaser_pending(), "dead daemon reports no work");
        // Requests made while dead are lost before any state changes.
        let lost = vm.release(now, pid, &[r.start.offset(1)]);
        assert_eq!(lost.accepted, 0);
        assert!(vm.page_resident_for_test(pid, r.start.offset(1)));
        assert!(vm.pm_resident(pid, r.start.offset(1)), "bit untouched");
        // Reconcile on restart: the orphaned queue entry is dropped and
        // the stranded release-pending page is revalidated, bitmap fixed.
        assert!(!vm.pm_resident(pid, r.start), "bit cleared pre-crash");
        let (orphaned, fixups) = vm.reconcile_releaser(now + SimDuration::from_millis(1));
        vm.set_releaser_alive(true);
        assert_eq!(orphaned, 1);
        assert_eq!(fixups, 1);
        assert!(vm.pm_resident(pid, r.start), "bitmap re-derived");
        assert!(!vm.release_pending_for_test(pid, r.start));
        assert!(!vm.releaser_pending());
        // The revalidated page hits normally again.
        let res = vm.touch(now + SimDuration::from_millis(2), pid, r.start, false);
        assert!(matches!(res.kind, TouchKind::Hit | TouchKind::TlbMiss));
    }

    #[test]
    fn frames_conserved_under_mixed_load() {
        let mut vm = small_vm();
        let a = vm.add_process(true);
        let b = vm.add_process(false);
        let ra = vm.map_region(a, 100, Backing::SwapPrefilled, true);
        let rb = vm.map_region(b, 100, Backing::ZeroFill, false);
        let mut now = t(1);
        for i in 0..60 {
            now = vm.touch(now, a, ra.start.offset(i), false).done_at;
            now = vm.touch(now, b, rb.start.offset(i), true).done_at;
            if i % 10 == 0 {
                vm.release(now, a, &[ra.start.offset(i)]);
            }
        }
        let allocated = vm.rss(a) + vm.rss(b);
        assert_eq!(allocated + vm.free_pages(), 64);
    }
}
