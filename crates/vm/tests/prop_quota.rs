//! Property tests for per-tenant quota accounting: the charge ledger is
//! conserved (the sum of per-tenant charged frames always equals the
//! frames actually resident), and the paging daemon never steals a
//! tenant below its guaranteed share while another tenant sits above its
//! own — no matter the operation interleaving.

use sim_core::check::{self, run_cases};
use sim_core::rng::Pcg32;
use sim_core::{SimDuration, SimTime};
use vm::{Backing, CostParams, Pid, TenantQuota, Tunables, VmSys};

const TOTAL: usize = 96;
const VICTIM_PAGES: u64 = 16;
const HOG_PAGES: u64 = 120;

#[derive(Clone, Debug)]
enum Act {
    VictimTouch { page: u16 },
    HogTouch { hog: u8, page: u16, write: bool },
    HogPrefetch { hog: u8, page: u16 },
    HogRelease { hog: u8, page: u16, len: u8 },
    ServiceReleaser,
    ServicePagingd,
    Advance(u32),
}

fn random_act(rng: &mut Pcg32) -> Act {
    match rng.next_below(12) {
        0..=1 => Act::VictimTouch {
            page: check::int_in(rng, 0, VICTIM_PAGES - 1) as u16,
        },
        2..=4 => Act::HogTouch {
            hog: rng.next_below(2) as u8,
            page: check::int_in(rng, 0, HOG_PAGES - 1) as u16,
            write: check::flip(rng),
        },
        5 => Act::HogPrefetch {
            hog: rng.next_below(2) as u8,
            page: check::int_in(rng, 0, HOG_PAGES - 1) as u16,
        },
        6..=7 => Act::HogRelease {
            hog: rng.next_below(2) as u8,
            page: check::int_in(rng, 0, HOG_PAGES - 1) as u16,
            len: check::int_in(rng, 1, 8) as u8,
        },
        8 => Act::ServiceReleaser,
        9 => Act::ServicePagingd,
        _ => Act::Advance(check::int_in(rng, 1, 5_000_000) as u32),
    }
}

/// Builds the standard three-tenant machine: a small victim plus two
/// oversubscribing hogs, all with declared quotas.
fn setup() -> (VmSys, Pid, [Pid; 2], vm::PageRange, [vm::PageRange; 2]) {
    let mut tun = Tunables::for_memory(TOTAL as u64);
    tun.min_freemem = 8;
    tun.target_freemem = 16;
    tun.daemon_scan_batch = 32;
    let mut vm = VmSys::new(
        TOTAL,
        tun,
        CostParams::default(),
        disk::SwapConfig::test_array(),
    );
    let victim = vm.add_process(false);
    let h0 = vm.add_process(true);
    let h1 = vm.add_process(true);
    let rv = vm.map_region(victim, VICTIM_PAGES, Backing::ZeroFill, false);
    let r0 = vm.map_region(h0, HOG_PAGES, Backing::SwapPrefilled, true);
    let r1 = vm.map_region(h1, HOG_PAGES, Backing::SwapPrefilled, true);
    vm.set_tenant_quota(victim, TenantQuota::new(VICTIM_PAGES, 4));
    vm.set_tenant_quota(h0, TenantQuota::new(24, 8));
    vm.set_tenant_quota(h1, TenantQuota::new(24, 8));
    (vm, victim, [h0, h1], rv, [r0, r1])
}

/// The quota ledger is conserved at every step: summed per-tenant
/// charges equal the frames resident, and each tenant's charge equals
/// its page-table residency exactly.
#[test]
fn charged_frames_are_conserved() {
    run_cases(0x51_4f_54_41, 64, |rng| {
        let n = check::int_in(rng, 1, 300);
        let acts: Vec<Act> = (0..n).map(|_| random_act(rng)).collect();
        let (mut vm, victim, hogs, rv, regions) = setup();
        let mut now = SimTime::from_nanos(1);
        for act in acts {
            match act {
                Act::VictimTouch { page } => {
                    let res = vm.touch(now, victim, rv.start.offset(u64::from(page)), false);
                    now = now.max(res.done_at);
                }
                Act::HogTouch { hog, page, write } => {
                    let i = usize::from(hog);
                    let res = vm.touch(
                        now,
                        hogs[i],
                        regions[i].start.offset(u64::from(page)),
                        write,
                    );
                    now = now.max(res.done_at);
                }
                Act::HogPrefetch { hog, page } => {
                    let i = usize::from(hog);
                    vm.prefetch(now, hogs[i], regions[i].start.offset(u64::from(page)));
                }
                Act::HogRelease { hog, page, len } => {
                    let i = usize::from(hog);
                    let vpns: Vec<_> = (0..u64::from(len))
                        .map(|k| regions[i].start.offset((u64::from(page) + k) % HOG_PAGES))
                        .collect();
                    vm.release(now, hogs[i], &vpns);
                }
                Act::ServiceReleaser => {
                    vm.service_releaser(now);
                }
                Act::ServicePagingd => {
                    vm.service_pagingd(now);
                }
                Act::Advance(ns) => {
                    now += SimDuration::from_nanos(u64::from(ns));
                }
            }
            // Conservation: the ledger never drifts from residency.
            let resident = vm.rss(victim) + vm.rss(hogs[0]) + vm.rss(hogs[1]);
            assert_eq!(
                vm.quotas().total_charged(),
                resident,
                "ledger charges {} frames but {} are resident",
                vm.quotas().total_charged(),
                resident
            );
            assert_eq!(resident + vm.free_pages(), TOTAL as u64, "frames leaked");
            for pid in [victim, hogs[0], hogs[1]] {
                assert_eq!(
                    vm.quotas().charged(pid.0),
                    vm.rss(pid),
                    "tenant {} charged {} but holds {}",
                    pid.0,
                    vm.quotas().charged(pid.0),
                    vm.rss(pid)
                );
            }
        }
    });
}

/// The guaranteed share is never stolen: while any hog sits above its
/// own guarantee, a paging-daemon activation must not push the victim
/// below (or further below) its guaranteed share.
#[test]
fn guaranteed_share_survives_pagingd_pressure() {
    run_cases(0x47_55_41_52, 64, |rng| {
        let n = check::int_in(rng, 20, 200);
        let acts: Vec<Act> = (0..n).map(|_| random_act(rng)).collect();
        let (mut vm, victim, hogs, rv, regions) = setup();
        let mut now = SimTime::from_nanos(1);
        // Fault the whole victim working set in first.
        for i in 0..VICTIM_PAGES {
            now = vm.touch(now, victim, rv.start.offset(i), true).done_at;
        }
        for act in acts {
            match act {
                Act::VictimTouch { page } => {
                    let res = vm.touch(now, victim, rv.start.offset(u64::from(page)), false);
                    now = now.max(res.done_at);
                }
                Act::HogTouch { hog, page, write } => {
                    let i = usize::from(hog);
                    let res = vm.touch(
                        now,
                        hogs[i],
                        regions[i].start.offset(u64::from(page)),
                        write,
                    );
                    now = now.max(res.done_at);
                }
                Act::HogPrefetch { hog, page } => {
                    let i = usize::from(hog);
                    vm.prefetch(now, hogs[i], regions[i].start.offset(u64::from(page)));
                }
                Act::HogRelease { hog, page, len } => {
                    let i = usize::from(hog);
                    let vpns: Vec<_> = (0..u64::from(len))
                        .map(|k| regions[i].start.offset((u64::from(page) + k) % HOG_PAGES))
                        .collect();
                    vm.release(now, hogs[i], &vpns);
                }
                Act::ServiceReleaser => {
                    vm.service_releaser(now);
                }
                Act::ServicePagingd => {
                    let before = vm.rss(victim);
                    vm.service_pagingd(now);
                    // If a hog is still over its guarantee after the
                    // sweep, it was over throughout (steals only shrink
                    // it), so the shield covered the victim the whole
                    // time: at or below its guarantee, it loses nothing.
                    let hog_still_over = hogs
                        .iter()
                        .any(|&h| vm.rss(h) > vm.quotas().guaranteed(h.0));
                    if hog_still_over && before <= VICTIM_PAGES {
                        assert!(
                            vm.rss(victim) >= before,
                            "victim stolen from {} to {} while a hog was over quota",
                            before,
                            vm.rss(victim)
                        );
                    }
                }
                Act::Advance(ns) => {
                    now += SimDuration::from_nanos(u64::from(ns));
                }
            }
        }
    });
}
