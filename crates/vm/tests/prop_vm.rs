//! Property tests for the VM subsystem: frame conservation, free-list
//! integrity, and shared-page bitmap ⇔ page-table consistency under
//! arbitrary interleavings of touches, prefetches, releases and daemon
//! activations.

use proptest::prelude::*;
use sim_core::{SimDuration, SimTime};
use vm::{Backing, CostParams, Tunables, VmSys};

#[derive(Clone, Debug)]
enum Act {
    Touch {
        proc_sel: u8,
        page: u16,
        write: bool,
    },
    Prefetch {
        page: u16,
    },
    Release {
        page: u16,
        len: u8,
    },
    ServiceReleaser,
    ServicePagingd,
    Advance(u32),
}

fn act_strategy() -> impl Strategy<Value = Act> {
    prop_oneof![
        4 => (any::<u8>(), 0u16..200, any::<bool>())
            .prop_map(|(p, page, write)| Act::Touch { proc_sel: p, page, write }),
        2 => (0u16..200).prop_map(|page| Act::Prefetch { page }),
        2 => (0u16..200, 1u8..8).prop_map(|(page, len)| Act::Release { page, len }),
        1 => Just(Act::ServiceReleaser),
        1 => Just(Act::ServicePagingd),
        2 => (1u32..5_000_000).prop_map(Act::Advance),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Frames are conserved and the bitmap tracks residency exactly, no
    /// matter the operation interleaving.
    #[test]
    fn frames_conserved_and_bitmap_consistent(
        acts in prop::collection::vec(act_strategy(), 1..300)
    ) {
        let total = 96usize;
        let mut tun = Tunables::for_memory(total as u64);
        tun.min_freemem = 8;
        tun.target_freemem = 16;
        tun.daemon_scan_batch = 32;
        let mut vm = VmSys::new(total, tun, CostParams::default(), disk::SwapConfig::test_array());
        let a = vm.add_process(true);
        let b = vm.add_process(false);
        let ra = vm.map_region(a, 200, Backing::SwapPrefilled, true);
        let rb = vm.map_region(b, 200, Backing::ZeroFill, false);

        let mut now = SimTime::from_nanos(1);
        for act in acts {
            match act {
                Act::Touch { proc_sel, page, write } => {
                    let (pid, r) = if proc_sel % 2 == 0 { (a, ra) } else { (b, rb) };
                    let res = vm.touch(now, pid, r.start.offset(u64::from(page)), write);
                    now = now.max(res.done_at);
                }
                Act::Prefetch { page } => {
                    let (_out, _cost) = vm.prefetch(now, a, ra.start.offset(u64::from(page)));
                }
                Act::Release { page, len } => {
                    let vpns: Vec<_> = (0..u64::from(len))
                        .map(|i| ra.start.offset(u64::from(page) + i))
                        .collect();
                    vm.release(now, a, &vpns);
                }
                Act::ServiceReleaser => {
                    vm.service_releaser(now);
                }
                Act::ServicePagingd => {
                    vm.service_pagingd(now);
                }
                Act::Advance(ns) => {
                    now += SimDuration::from_nanos(u64::from(ns));
                }
            }
            // Invariant 1: frame conservation.
            let allocated = vm.rss(a) + vm.rss(b);
            prop_assert_eq!(
                allocated + vm.free_pages(),
                total as u64,
                "frames leaked: rss {} + free {} != {}",
                allocated, vm.free_pages(), total
            );
            // Invariant 2: bitmap ⇔ residency for the PM process. A set
            // bit may briefly cover an in-flight release (cleared at
            // request time while still mapped), so check one direction
            // exactly and the other modulo pending releases.
            for i in 0..200u64 {
                let vpn = ra.start.offset(i);
                let resident = vm.page_resident_for_test(a, vpn);
                let bit = vm.pm_resident(a, vpn);
                if bit {
                    prop_assert!(
                        resident,
                        "bit set for non-resident page {vpn} (offset {i})"
                    );
                }
                if resident && !bit {
                    prop_assert!(
                        vm.release_pending_for_test(a, vpn),
                        "bit clear for resident page {vpn} with no pending release"
                    );
                }
            }
        }
    }

    /// The releaser never frees a page referenced after its request, and
    /// always leaves the VM balanced.
    #[test]
    fn releaser_respects_rereferences(
        pages in prop::collection::vec(0u16..32, 1..40),
        retouch in prop::collection::vec(any::<bool>(), 40),
    ) {
        let total = 64usize;
        let mut vm = VmSys::new(
            total,
            Tunables::for_memory(total as u64),
            CostParams::default(),
            disk::SwapConfig::test_array(),
        );
        let a = vm.add_process(true);
        let ra = vm.map_region(a, 32, Backing::SwapPrefilled, true);
        let mut now = SimTime::from_nanos(1);
        // Touch everything in.
        for i in 0..32 {
            now = vm.touch(now, a, ra.start.offset(i), false).done_at;
        }
        // Issue releases, re-touching a chosen subset afterwards.
        let mut protected = std::collections::HashSet::new();
        for (k, &p) in pages.iter().enumerate() {
            let vpn = ra.start.offset(u64::from(p));
            vm.release(now, a, &[vpn]);
            if retouch[k % retouch.len()] {
                now += SimDuration::from_micros(5);
                let res = vm.touch(now, a, vpn, false);
                now = res.done_at;
                protected.insert(u64::from(p));
            } else {
                protected.remove(&u64::from(p));
            }
        }
        now += SimDuration::from_millis(1);
        vm.service_releaser(now);
        for p in protected {
            prop_assert!(
                vm.page_resident_for_test(a, ra.start.offset(p)),
                "re-referenced page {p} was freed"
            );
        }
        prop_assert_eq!(vm.rss(a) + vm.free_pages(), total as u64);
    }
}
