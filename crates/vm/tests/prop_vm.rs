//! Property tests for the VM subsystem: frame conservation, free-list
//! integrity, and shared-page bitmap ⇔ page-table consistency under
//! arbitrary interleavings of touches, prefetches, releases and daemon
//! activations.

use sim_core::check::{self, run_cases};
use sim_core::rng::Pcg32;
use sim_core::{SimDuration, SimTime};
use vm::{Backing, CostParams, Tunables, VmSys};

#[derive(Clone, Debug)]
enum Act {
    Touch {
        proc_sel: u8,
        page: u16,
        write: bool,
    },
    Prefetch {
        page: u16,
    },
    Release {
        page: u16,
        len: u8,
    },
    ServiceReleaser,
    ServicePagingd,
    Advance(u32),
}

fn random_act(rng: &mut Pcg32) -> Act {
    // Weights mirror the old strategy: touch 4, prefetch 2, release 2,
    // service-releaser 1, service-pagingd 1, advance 2.
    match rng.next_below(12) {
        0..=3 => Act::Touch {
            proc_sel: rng.next_below(256) as u8,
            page: check::int_in(rng, 0, 200) as u16,
            write: check::flip(rng),
        },
        4..=5 => Act::Prefetch {
            page: check::int_in(rng, 0, 200) as u16,
        },
        6..=7 => Act::Release {
            page: check::int_in(rng, 0, 200) as u16,
            len: check::int_in(rng, 1, 8) as u8,
        },
        8 => Act::ServiceReleaser,
        9 => Act::ServicePagingd,
        _ => Act::Advance(check::int_in(rng, 1, 5_000_000) as u32),
    }
}

/// Frames are conserved and the bitmap tracks residency exactly, no
/// matter the operation interleaving.
#[test]
fn frames_conserved_and_bitmap_consistent() {
    run_cases(0xF4A3E5, 64, |rng| {
        let n = check::int_in(rng, 1, 300);
        let acts: Vec<Act> = (0..n).map(|_| random_act(rng)).collect();
        let total = 96usize;
        let mut tun = Tunables::for_memory(total as u64);
        tun.min_freemem = 8;
        tun.target_freemem = 16;
        tun.daemon_scan_batch = 32;
        let mut vm = VmSys::new(
            total,
            tun,
            CostParams::default(),
            disk::SwapConfig::test_array(),
        );
        let a = vm.add_process(true);
        let b = vm.add_process(false);
        let ra = vm.map_region(a, 200, Backing::SwapPrefilled, true);
        let rb = vm.map_region(b, 200, Backing::ZeroFill, false);

        let mut now = SimTime::from_nanos(1);
        for act in acts {
            match act {
                Act::Touch {
                    proc_sel,
                    page,
                    write,
                } => {
                    let (pid, r) = if proc_sel % 2 == 0 { (a, ra) } else { (b, rb) };
                    let res = vm.touch(now, pid, r.start.offset(u64::from(page)), write);
                    now = now.max(res.done_at);
                }
                Act::Prefetch { page } => {
                    let (_out, _cost) = vm.prefetch(now, a, ra.start.offset(u64::from(page)));
                }
                Act::Release { page, len } => {
                    let vpns: Vec<_> = (0..u64::from(len))
                        .map(|i| ra.start.offset(u64::from(page) + i))
                        .collect();
                    vm.release(now, a, &vpns);
                }
                Act::ServiceReleaser => {
                    vm.service_releaser(now);
                }
                Act::ServicePagingd => {
                    vm.service_pagingd(now);
                }
                Act::Advance(ns) => {
                    now += SimDuration::from_nanos(u64::from(ns));
                }
            }
            // Invariant 1: frame conservation.
            let allocated = vm.rss(a) + vm.rss(b);
            assert_eq!(
                allocated + vm.free_pages(),
                total as u64,
                "frames leaked: rss {} + free {} != {}",
                allocated,
                vm.free_pages(),
                total
            );
            // Invariant 2: bitmap ⇔ residency for the PM process. A set
            // bit may briefly cover an in-flight release (cleared at
            // request time while still mapped), so check one direction
            // exactly and the other modulo pending releases.
            for i in 0..200u64 {
                let vpn = ra.start.offset(i);
                let resident = vm.page_resident_for_test(a, vpn);
                let bit = vm.pm_resident(a, vpn);
                if bit {
                    assert!(resident, "bit set for non-resident page {vpn} (offset {i})");
                }
                if resident && !bit {
                    assert!(
                        vm.release_pending_for_test(a, vpn),
                        "bit clear for resident page {vpn} with no pending release"
                    );
                }
            }
        }
    });
}

/// The releaser never frees a page referenced after its request, and
/// always leaves the VM balanced.
#[test]
fn releaser_respects_rereferences() {
    run_cases(0x4E7011C4, 64, |rng| {
        let pages = check::vec_of_ints(rng, 1, 40, 0, 32);
        let retouch: Vec<bool> = (0..40).map(|_| check::flip(rng)).collect();
        let total = 64usize;
        let mut vm = VmSys::new(
            total,
            Tunables::for_memory(total as u64),
            CostParams::default(),
            disk::SwapConfig::test_array(),
        );
        let a = vm.add_process(true);
        let ra = vm.map_region(a, 32, Backing::SwapPrefilled, true);
        let mut now = SimTime::from_nanos(1);
        // Touch everything in.
        for i in 0..32 {
            now = vm.touch(now, a, ra.start.offset(i), false).done_at;
        }
        // Issue releases, re-touching a chosen subset afterwards.
        let mut protected = std::collections::HashSet::new();
        for (k, &p) in pages.iter().enumerate() {
            let vpn = ra.start.offset(p);
            vm.release(now, a, &[vpn]);
            if retouch[k % retouch.len()] {
                now += SimDuration::from_micros(5);
                let res = vm.touch(now, a, vpn, false);
                now = res.done_at;
                protected.insert(p);
            } else {
                protected.remove(&p);
            }
        }
        now += SimDuration::from_millis(1);
        vm.service_releaser(now);
        for p in protected {
            assert!(
                vm.page_resident_for_test(a, ra.start.offset(p)),
                "re-referenced page {p} was freed"
            );
        }
        assert_eq!(vm.rss(a) + vm.free_pages(), total as u64);
    });
}
