//! Hostile-tenant op streams (the adversary model's workload half).
//!
//! [`sim_core::fault::AdversaryPlan`] describes *which* abuse strategies
//! run; this module is the driver that actually emits them as ordinary
//! [`Op`]s, so an adversary goes through exactly the same engine, runtime
//! layer, and VM paths as an honest tenant — there is no side door. Every
//! random draw comes from the plan's `FaultDomain::Adversary` stream for
//! that adversary index, so adversarial runs stay bit-reproducible.
//!
//! The strategies (see [`AdversaryStrategy`]):
//!
//! * **HintFlood** — maximum-rate prefetch/release churn to burn hint-path
//!   kernel time.
//! * **FalsePrefetchStorm** — prefetch ranges it never touches, draining
//!   the free list.
//! * **ReleaseWithholding** — a classic hog: grow and re-touch a big
//!   resident set, never release.
//! * **PriorityInflation** — release pages it immediately re-touches,
//!   farming rescue/cancellation work while claiming top Eq. 2 priority.
//! * **QuotaProbing** — allocation bursts timed between idle cool-downs,
//!   probing for unguarded headroom.

use runtime::{Op, OpStream};
use sim_core::fault::AdversaryStrategy;
use sim_core::rng::Pcg32;
use sim_core::SimDuration;
use vm::Vpn;

/// Tag base for adversary-issued hints (distinct per strategy so health
/// monitoring and reports can attribute them).
pub const ADVERSARY_TAG_BASE: u32 = 9000;

/// A hostile tenant's op stream. Runs until the simulation stops.
#[derive(Debug)]
pub struct AdversaryTask {
    base: Vpn,
    pages: u64,
    strategy: AdversaryStrategy,
    intensity: u64,
    rng: Pcg32,
    cursor: u64,
    phase: u64,
    touched_once: bool,
}

impl AdversaryTask {
    /// Creates one adversary grazing `pages` pages starting at `base`.
    ///
    /// `rng` must be the plan's `FaultDomain::Adversary` stream for this
    /// adversary's index; `intensity` is the plan's aggression knob
    /// (clamped to at least 1).
    pub fn new(
        base: Vpn,
        pages: u64,
        strategy: AdversaryStrategy,
        intensity: u32,
        rng: Pcg32,
    ) -> Self {
        AdversaryTask {
            base,
            pages: pages.max(1),
            strategy,
            intensity: u64::from(intensity.max(1)),
            rng,
            cursor: 0,
            phase: 0,
            touched_once: false,
        }
    }

    /// The hint tag this adversary stamps on its hints.
    pub fn tag(&self) -> u32 {
        ADVERSARY_TAG_BASE
            + match self.strategy {
                AdversaryStrategy::HintFlood => 0,
                AdversaryStrategy::FalsePrefetchStorm => 1,
                AdversaryStrategy::ReleaseWithholding => 2,
                AdversaryStrategy::PriorityInflation => 3,
                AdversaryStrategy::QuotaProbing => 4,
            }
    }

    fn random_vpn(&mut self) -> Vpn {
        Vpn(self.base.0 + u64::from(self.rng.next_u32()) % self.pages)
    }

    fn hint_flood(&mut self) -> Op {
        // Alternate prefetch and release hints over random pages at the
        // maximum rate the engine permits, with a token touch every
        // `intensity` hints so the process stays a live memory consumer.
        let step = self.phase;
        self.phase += 1;
        let tag = self.tag();
        if step % (2 * self.intensity) == 2 * self.intensity - 1 {
            let vpn = self.random_vpn();
            return Op::Touch { vpn, write: false };
        }
        let vpn = self.random_vpn();
        if step.is_multiple_of(2) {
            Op::PrefetchHint {
                vpn,
                npages: 1,
                tag,
            }
        } else {
            Op::ReleaseHint {
                vpn,
                priority: 1,
                tag,
            }
        }
    }

    fn false_prefetch_storm(&mut self) -> Op {
        // Prefetch disjoint chunks it will never touch. A short compute
        // between chunks lets the I/O land, keeping the free list drained
        // rather than the requests merely discarded.
        let step = self.phase;
        self.phase += 1;
        if step % 2 == 1 {
            return Op::Compute(SimDuration::from_micros(50));
        }
        let chunk = self.intensity.min(self.pages);
        let start = self.cursor % self.pages;
        self.cursor += chunk;
        let npages = chunk.min(self.pages - start);
        Op::PrefetchHint {
            vpn: Vpn(self.base.0 + start),
            npages,
            tag: self.tag(),
        }
    }

    fn release_withholding(&mut self) -> Op {
        // Round-robin touches over the whole span: grows RSS to the span
        // size and keeps every page recently-referenced so the clock
        // never finds an unsampled victim. No hints, ever.
        let vpn = Vpn(self.base.0 + self.cursor % self.pages);
        self.cursor += 1;
        if self.cursor.is_multiple_of(self.pages) {
            self.touched_once = true;
        }
        Op::Touch {
            vpn,
            write: !self.touched_once,
        }
    }

    fn priority_inflation(&mut self) -> Op {
        // Release a page at the maximum Eq. 2 priority, then immediately
        // touch it back: every honoured release becomes a rescue or a
        // cancellation — pure wasted kernel work that *looks* cooperative.
        let step = self.phase;
        self.phase += 1;
        let vpn = Vpn(self.base.0 + (step / 2) % self.pages);
        if step.is_multiple_of(2) {
            Op::ReleaseHint {
                vpn,
                priority: u32::MAX,
                tag: self.tag(),
            }
        } else {
            Op::Touch { vpn, write: false }
        }
    }

    fn quota_probing(&mut self) -> Op {
        // Burst `intensity` fresh touches, then go idle for a beat —
        // probing for allocation headroom between daemon activations.
        let burst = self.intensity;
        let step = self.phase % (burst + 1);
        self.phase += 1;
        if step == burst {
            return Op::Sleep(SimDuration::from_millis(20));
        }
        let vpn = Vpn(self.base.0 + self.cursor % self.pages);
        self.cursor += 1;
        Op::Touch { vpn, write: false }
    }
}

impl OpStream for AdversaryTask {
    fn next_op(&mut self) -> Op {
        match self.strategy {
            AdversaryStrategy::HintFlood => self.hint_flood(),
            AdversaryStrategy::FalsePrefetchStorm => self.false_prefetch_storm(),
            AdversaryStrategy::ReleaseWithholding => self.release_withholding(),
            AdversaryStrategy::PriorityInflation => self.priority_inflation(),
            AdversaryStrategy::QuotaProbing => self.quota_probing(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::fault::{FaultDomain, FaultPlan};

    fn task(strategy: AdversaryStrategy) -> AdversaryTask {
        let plan = FaultPlan::seeded(42);
        AdversaryTask::new(
            Vpn(1000),
            64,
            strategy,
            8,
            plan.stream_rng(FaultDomain::Adversary, 0),
        )
    }

    fn ops(t: &mut AdversaryTask, n: usize) -> Vec<Op> {
        (0..n).map(|_| t.next_op()).collect()
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        for s in AdversaryStrategy::ALL {
            let a = ops(&mut task(s), 500);
            let b = ops(&mut task(s), 500);
            assert_eq!(a, b, "{} not reproducible", s.name());
        }
    }

    #[test]
    fn adversaries_never_end() {
        for s in AdversaryStrategy::ALL {
            let t = ops(&mut task(s), 2000);
            assert!(t.iter().all(|o| *o != Op::End), "{} ended", s.name());
        }
    }

    #[test]
    fn hint_flood_is_mostly_hints() {
        let t = ops(&mut task(AdversaryStrategy::HintFlood), 1000);
        let hints = t
            .iter()
            .filter(|o| matches!(o, Op::PrefetchHint { .. } | Op::ReleaseHint { .. }))
            .count();
        assert!(hints > 900, "only {hints} hints in 1000 ops");
    }

    #[test]
    fn false_prefetch_storm_never_touches() {
        let t = ops(&mut task(AdversaryStrategy::FalsePrefetchStorm), 1000);
        assert!(t.iter().all(|o| !matches!(o, Op::Touch { .. })));
        assert!(t.iter().any(|o| matches!(o, Op::PrefetchHint { .. })));
    }

    #[test]
    fn release_withholding_never_hints() {
        let t = ops(&mut task(AdversaryStrategy::ReleaseWithholding), 1000);
        assert!(t
            .iter()
            .all(|o| !matches!(o, Op::PrefetchHint { .. } | Op::ReleaseHint { .. })));
    }

    #[test]
    fn priority_inflation_pairs_release_with_retouch() {
        let mut t = task(AdversaryStrategy::PriorityInflation);
        let a = t.next_op();
        let b = t.next_op();
        let Op::ReleaseHint { vpn, priority, .. } = a else {
            panic!("expected release first, got {a:?}");
        };
        assert_eq!(priority, u32::MAX);
        assert_eq!(b, Op::Touch { vpn, write: false });
    }

    #[test]
    fn quota_probing_alternates_bursts_and_sleeps() {
        let t = ops(&mut task(AdversaryStrategy::QuotaProbing), 90);
        let sleeps = t.iter().filter(|o| matches!(o, Op::Sleep(_))).count();
        assert_eq!(sleeps, 10, "8-touch bursts separated by sleeps");
    }

    #[test]
    fn tags_are_distinct_per_strategy() {
        let tags: Vec<u32> = AdversaryStrategy::ALL
            .iter()
            .map(|&s| task(s).tag())
            .collect();
        let mut dedup = tags.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), tags.len());
    }
}
