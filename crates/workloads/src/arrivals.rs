//! Fleet-scale seeded arrival processes and memory-pressure storms.
//!
//! The paper proves releases protect *one* interactive task beside *one*
//! hog; the ROADMAP's datacenter setting is hundreds of hogs and
//! thousands of latency-sensitive tasks. This module generates that
//! fleet deterministically:
//!
//! * [`ArrivalProcess`] — open-loop interarrival generators: Poisson
//!   (exponential gaps by inverse CDF) and ON/OFF bursty (Poisson gaps
//!   confined to periodic ON windows). Every draw comes from a
//!   [`Pcg32`] stream salted per concern, so the processes are
//!   bit-identical across repeats and worker counts, and adding hogs
//!   never perturbs the task arrivals.
//! * [`ZipfTenants`] — zipfian tenant popularity: tenant `k` (1-based)
//!   carries weight `1/k^s`, so a few tenants dominate the fleet the
//!   way production multi-tenancy does.
//! * [`FleetSpec`] — the whole fleet in one value: hog and task
//!   populations, arrival processes, per-request working-set ranges,
//!   closed-loop think time, an optional [`SurgeSpec`] storm, and the
//!   brownout-ladder switch. [`FleetSpec::plan`] expands it into a flat
//!   arrival table the scenario installer walks.
//! * [`FleetHog`] — a terminating out-of-core hog op stream: sweeps its
//!   working set with release hints one page behind (the paper's "R"/"B"
//!   idiom), so the brownout ladder has buffered releases to escalate.
//!   Interactive tasks reuse
//!   [`InteractiveTask::with_pages`](crate::InteractiveTask) — the
//!   closed-loop half: each task re-sweeps only after its think time.
//!
//! A [`SurgeSpec`] is the deterministic memory-pressure storm: a batch
//! of synchronized hog arrivals with inflated working sets at a chosen
//! instant, optionally combined with a mid-run `memory_limit` shrink
//! routed through the existing `FaultPlan` daemon machinery
//! (`shrink_limit_at` / `shrink_to_frac`).

use runtime::{Op, OpStream};
use sim_core::rng::Pcg32;
use sim_core::{SimDuration, SimTime};
use vm::Vpn;

/// First directive tag used by fleet hogs (clear of the benchmarks' and
/// adversaries' tag spaces).
pub const FLEET_TAG_BASE: u32 = 20_000;

// Per-concern Pcg32 stream salts: each draw sequence is independent, so
// e.g. growing the hog population never shifts the task arrivals.
const STREAM_HOG_ARRIVALS: u64 = 0x464c_4841; // "FLHA"
const STREAM_TASK_ARRIVALS: u64 = 0x464c_5441; // "FLTA"
const STREAM_HOG_TENANTS: u64 = 0x464c_4854; // "FLHT"
const STREAM_TASK_TENANTS: u64 = 0x464c_5454; // "FLTT"
const STREAM_TASK_PAGES: u64 = 0x464c_5457; // "FLTW"
const STREAM_SURGE_TENANTS: u64 = 0x464c_5348; // "FLSH"

/// An open-loop interarrival generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `rate_per_sec` (exponential gaps).
    Poisson {
        /// Mean arrival rate, per simulated second.
        rate_per_sec: f64,
    },
    /// Bursty arrivals: Poisson at `rate_per_sec` inside periodic ON
    /// windows, silence in the OFF windows. Models synchronized diurnal
    /// or batch-triggered load.
    OnOff {
        /// Length of each ON window.
        on: SimDuration,
        /// Length of each OFF window following it.
        off: SimDuration,
        /// Arrival rate inside ON windows, per simulated second.
        rate_per_sec: f64,
    },
}

/// One exponential gap by inverse CDF, floored at 1 ns so time always
/// advances.
fn exp_gap_ns(rng: &mut Pcg32, rate_per_sec: f64) -> u64 {
    let u = rng.next_f64();
    let secs = -(1.0 - u).ln() / rate_per_sec;
    ((secs * 1e9) as u64).max(1)
}

impl ArrivalProcess {
    /// The first `max` arrival instants inside `[0, horizon)`,
    /// deterministically from `rng`.
    pub fn times(&self, rng: &mut Pcg32, horizon: SimDuration, max: usize) -> Vec<SimTime> {
        let mut out = Vec::with_capacity(max);
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } => {
                let mut t = 0u64;
                while out.len() < max {
                    t += exp_gap_ns(rng, rate_per_sec);
                    if t >= horizon.as_nanos() {
                        break;
                    }
                    out.push(SimTime::from_nanos(t));
                }
            }
            ArrivalProcess::OnOff {
                on,
                off,
                rate_per_sec,
            } => {
                // Draw in *active* time (ON windows only), then map the
                // active instant onto the wall clock by re-inserting the
                // OFF windows: active `a` lands in ON window `a / on` at
                // offset `a % on`.
                let (on_ns, cycle_ns) = (on.as_nanos(), (on + off).as_nanos());
                let mut active = 0u64;
                while out.len() < max {
                    active += exp_gap_ns(rng, rate_per_sec);
                    let wall = (active / on_ns) * cycle_ns + active % on_ns;
                    if wall >= horizon.as_nanos() {
                        break;
                    }
                    out.push(SimTime::from_nanos(wall));
                }
            }
        }
        out
    }
}

/// Zipfian tenant popularity: tenant `k` (0-based) has weight
/// `1/(k+1)^s`. Draws are by precomputed-CDF inversion — one `next_f64`
/// per draw, deterministic.
#[derive(Clone, Debug)]
pub struct ZipfTenants {
    cdf: Vec<f64>,
}

impl ZipfTenants {
    /// A distribution over `n >= 1` tenants with exponent `s` (`0.0` is
    /// uniform; `~1.0` is the classic web/tenant skew).
    pub fn new(n: u32, s: f64) -> Self {
        assert!(n >= 1, "at least one tenant");
        let weights: Vec<f64> = (1..=n).map(|k| (f64::from(k)).powf(-s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        ZipfTenants { cdf }
    }

    /// Draws one tenant index in `0..n`.
    pub fn draw(&self, rng: &mut Pcg32) -> u32 {
        let u = rng.next_f64();
        self.cdf
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.cdf.len() - 1) as u32
    }
}

/// A deterministic memory-pressure storm scheduled inside a fleet run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SurgeSpec {
    /// When the storm hits: all surge hogs of the first wave arrive at
    /// this instant.
    pub at: SimTime,
    /// Synchronized hog arrivals per wave.
    pub hogs: u32,
    /// Number of synchronized waves (`>= 1`). A reactive ladder cannot
    /// prevent the first wave's allocation stalls — its value shows in
    /// how it absorbs the *later* waves, so storms worth demonstrating
    /// on send several.
    pub waves: u32,
    /// Gap between consecutive wave fronts.
    pub wave_gap: SimDuration,
    /// The storm hogs' (inflated) working set, in pages.
    pub hog_pages: u64,
    /// Sweeps each storm hog performs before terminating (bounds the
    /// storm; the post-storm recovery window starts once they drain).
    pub hog_sweeps: u32,
    /// Mid-run `memory_limit` shrink to this fraction at `at`, routed
    /// through the FaultPlan daemon machinery. `1.0` = no shrink.
    pub shrink_to_frac: f64,
    /// Nominal storm window, used only for pre/post throughput
    /// accounting (`RunResult::fleet`): pre-surge ends at `at`,
    /// post-surge starts at `at + duration`.
    pub duration: SimDuration,
}

impl Default for SurgeSpec {
    fn default() -> Self {
        SurgeSpec {
            at: SimTime::from_nanos(2_000_000_000),
            hogs: 8,
            waves: 1,
            wave_gap: SimDuration::from_millis(500),
            hog_pages: 96,
            hog_sweeps: 2,
            shrink_to_frac: 1.0,
            duration: SimDuration::from_secs(2),
        }
    }
}

/// A whole fleet, as one seeded value. Expanded by [`FleetSpec::plan`].
#[derive(Clone, Debug, PartialEq)]
pub struct FleetSpec {
    /// Master seed: every stream below derives from it.
    pub seed: u64,
    /// Number of logical tenants sharing the machine.
    pub tenants: u32,
    /// Zipf popularity exponent over those tenants.
    pub zipf_s: f64,
    /// Baseline (non-surge) hog population.
    pub hogs: u32,
    /// Baseline hogs' working set, in pages.
    pub hog_pages: u64,
    /// Sweeps each baseline hog performs before terminating.
    pub hog_sweeps: u32,
    /// Guaranteed share (pages) each hog's tenant quota carries.
    pub hog_guarantee: u64,
    /// Open-loop arrival process for the baseline hogs.
    pub hog_arrivals: ArrivalProcess,
    /// Interactive task population.
    pub tasks: u32,
    /// Smallest per-request working set, in pages (inclusive).
    pub task_pages_min: u64,
    /// Largest per-request working set, in pages (inclusive).
    pub task_pages_max: u64,
    /// Sweeps each task performs before terminating (closed loop: each
    /// sweep waits out the think time first).
    pub task_sweeps: u32,
    /// Closed-loop think time between a task's sweeps.
    pub think: SimDuration,
    /// Open-loop arrival process for the tasks.
    pub task_arrivals: ArrivalProcess,
    /// Arrivals are only generated inside `[0, horizon)`.
    pub horizon: SimDuration,
    /// The scheduled storm, if any.
    pub surge: Option<SurgeSpec>,
    /// Whether the brownout ladder (pressure monitor + overload
    /// controller) is armed for this run.
    pub ladder: bool,
    /// Pressure-monitor sampling period (the ladder's control-loop
    /// tick; the monitor itself is always armed for fleet runs).
    pub pressure_period: SimDuration,
}

impl Default for FleetSpec {
    fn default() -> Self {
        FleetSpec {
            seed: 42,
            tenants: 4,
            zipf_s: 1.0,
            hogs: 8,
            hog_pages: 64,
            hog_sweeps: 2,
            hog_guarantee: 16,
            hog_arrivals: ArrivalProcess::Poisson { rate_per_sec: 4.0 },
            tasks: 40,
            task_pages_min: 4,
            task_pages_max: 16,
            task_sweeps: 3,
            think: SimDuration::from_millis(50),
            task_arrivals: ArrivalProcess::Poisson { rate_per_sec: 20.0 },
            horizon: SimDuration::from_secs(8),
            surge: None,
            ladder: true,
            pressure_period: SimDuration::from_millis(10),
        }
    }
}

/// One planned fleet process arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FleetArrival {
    /// When the process starts.
    pub start: SimTime,
    /// The logical tenant it belongs to.
    pub tenant: u32,
    /// Its working set, in pages.
    pub pages: u64,
    /// Hog (open-loop, release-behind) or interactive task
    /// (closed-loop, Mark-bracketed sweeps).
    pub hog: bool,
    /// Whether it belongs to the surge storm.
    pub surge: bool,
}

impl FleetSpec {
    /// The tuned demonstration storm for the scaled-down 600-frame
    /// machine (`MachineConfig::small`): twelve disk-paced baseline hogs
    /// and four hundred interactive tasks, hit at t=2 s by six
    /// synchronized waves of 30 zero-fill hogs with inflated working
    /// sets, 400 ms apart, while `memory_limit` shrinks to half.
    ///
    /// The regime is chosen so the defended and undefended runs diverge
    /// sharply: with the ladder armed the fleet-wide p999 stays in the
    /// low tens of milliseconds (a handful of over-guarantee hogs are
    /// shed, nothing is OOM-killed); undefended, the same storm pushes
    /// p999 past ten seconds and OOM-kills processes outright. Shared by
    /// `tests/fleet.rs`, `bench --bin surge_matrix`, and
    /// `hogtame fleet`.
    pub fn storm_demo(ladder: bool) -> Self {
        FleetSpec {
            hogs: 12,
            hog_pages: 96,
            hog_sweeps: 3,
            hog_guarantee: 8,
            tasks: 400,
            task_sweeps: 5,
            horizon: SimDuration::from_secs(10),
            pressure_period: SimDuration::from_millis(2),
            surge: Some(SurgeSpec {
                at: SimTime::from_nanos(2_000_000_000),
                hogs: 30,
                waves: 6,
                wave_gap: SimDuration::from_millis(400),
                hog_pages: 160,
                hog_sweeps: 4,
                shrink_to_frac: 0.5,
                duration: SimDuration::from_secs(3),
            }),
            ladder,
            ..FleetSpec::default()
        }
    }

    /// A datacenter-scale population for the full 4800-frame machine
    /// (`MachineConfig::origin200`): `hogs` out-of-core hogs and `tasks`
    /// interactive tasks across sixteen zipf-weighted tenants. Working
    /// sets are kept small so the scenario stresses *population* (event
    /// volume, tenant accounting, tail bookkeeping) rather than
    /// footprint; arrival rates are high enough that every planned
    /// process lands inside the horizon.
    pub fn datacenter(hogs: u32, tasks: u32) -> Self {
        FleetSpec {
            tenants: 16,
            hogs,
            hog_pages: 24,
            hog_sweeps: 2,
            hog_guarantee: 8,
            hog_arrivals: ArrivalProcess::Poisson {
                rate_per_sec: f64::from(hogs.max(1)) / 2.0,
            },
            tasks,
            task_pages_min: 2,
            task_pages_max: 6,
            task_sweeps: 3,
            task_arrivals: ArrivalProcess::Poisson {
                rate_per_sec: f64::from(tasks.max(1)) / 2.0,
            },
            horizon: SimDuration::from_secs(8),
            ..FleetSpec::default()
        }
    }

    /// Expands the spec into the flat, deterministic arrival table:
    /// baseline hogs, then surge hogs (all at `surge.at`), then tasks.
    /// A pure function of the spec — no ambient state, no wall clock.
    pub fn plan(&self) -> Vec<FleetArrival> {
        let zipf = ZipfTenants::new(self.tenants, self.zipf_s);
        let mut out = Vec::new();

        let mut arr = Pcg32::new(self.seed, STREAM_HOG_ARRIVALS);
        let mut ten = Pcg32::new(self.seed, STREAM_HOG_TENANTS);
        for start in self
            .hog_arrivals
            .times(&mut arr, self.horizon, self.hogs as usize)
        {
            out.push(FleetArrival {
                start,
                tenant: zipf.draw(&mut ten),
                pages: self.hog_pages,
                hog: true,
                surge: false,
            });
        }

        if let Some(surge) = self.surge {
            let mut ten = Pcg32::new(self.seed, STREAM_SURGE_TENANTS);
            for wave in 0..surge.waves.max(1) {
                let front =
                    surge.at + SimDuration::from_nanos(surge.wave_gap.as_nanos() * u64::from(wave));
                for _ in 0..surge.hogs {
                    out.push(FleetArrival {
                        start: front,
                        tenant: zipf.draw(&mut ten),
                        pages: surge.hog_pages,
                        hog: true,
                        surge: true,
                    });
                }
            }
        }

        let mut arr = Pcg32::new(self.seed, STREAM_TASK_ARRIVALS);
        let mut ten = Pcg32::new(self.seed, STREAM_TASK_TENANTS);
        let mut pg = Pcg32::new(self.seed, STREAM_TASK_PAGES);
        let span = self.task_pages_max - self.task_pages_min + 1;
        for start in self
            .task_arrivals
            .times(&mut arr, self.horizon, self.tasks as usize)
        {
            out.push(FleetArrival {
                start,
                tenant: zipf.draw(&mut ten),
                pages: self.task_pages_min + pg.next_below(span as u32) as u64,
                hog: false,
                surge: false,
            });
        }
        out
    }
}

/// A terminating out-of-core hog: sweeps `pages` sequentially `sweeps`
/// times, releasing each page one behind the touch cursor (the paper's
/// release-behind idiom), then retires its tag and ends. With a
/// `Buffered` policy its releases sit in the priority queues — exactly
/// what the brownout ladder escalates to aggressive under pressure.
#[derive(Debug)]
pub struct FleetHog {
    base: Vpn,
    pages: u64,
    sweeps: u32,
    tag: u32,
    work_per_page: SimDuration,
    sweep: u32,
    cursor: u64,
    phase: HogPhase,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum HogPhase {
    Touch,
    Release,
    Retire,
    Done,
}

impl FleetHog {
    /// A hog over an already-mapped region starting at `base`.
    pub fn new(base: Vpn, pages: u64, sweeps: u32, tag: u32) -> Self {
        FleetHog {
            base,
            pages,
            sweeps: sweeps.max(1),
            tag,
            // Out-of-core compute: ~25 µs of work per 16 KB page.
            work_per_page: SimDuration::from_micros(25),
            sweep: 0,
            cursor: 0,
            phase: HogPhase::Touch,
        }
    }
}

impl OpStream for FleetHog {
    fn next_op(&mut self) -> Op {
        match self.phase {
            HogPhase::Touch => {
                if self.cursor >= self.pages {
                    self.cursor = 0;
                    self.sweep += 1;
                    if self.sweep >= self.sweeps {
                        self.phase = HogPhase::Retire;
                    }
                    return Op::Compute(SimDuration::from_nanos(
                        self.work_per_page.as_nanos() * self.pages,
                    ));
                }
                self.phase = HogPhase::Release;
                Op::Touch {
                    vpn: Vpn(self.base.0 + self.cursor),
                    write: self.sweep == 0,
                }
            }
            HogPhase::Release => {
                self.phase = HogPhase::Touch;
                let vpn = Vpn(self.base.0 + self.cursor);
                self.cursor += 1;
                // Priority 1: expected reuse on the next sweep, so a
                // Buffered policy holds it (and brownout can drain
                // it); the one-behind filter keeps it safe.
                Op::ReleaseHint {
                    vpn,
                    priority: 1,
                    tag: self.tag,
                }
            }
            HogPhase::Retire => {
                self.phase = HogPhase::Done;
                Op::RetireTag { tag: self.tag }
            }
            HogPhase::Done => Op::End,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_and_inside_horizon() {
        let p = ArrivalProcess::Poisson {
            rate_per_sec: 100.0,
        };
        let h = SimDuration::from_secs(1);
        let a = p.times(&mut Pcg32::new(7, 1), h, 1000);
        let b = p.times(&mut Pcg32::new(7, 1), h, 1000);
        assert_eq!(a, b, "same seed, same arrivals");
        assert!(!a.is_empty());
        assert!(a.iter().all(|t| t.as_nanos() < h.as_nanos()));
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "sorted");
        // ~100 arrivals expected in 1 s at 100/s.
        assert!(a.len() > 50 && a.len() <= 150, "got {}", a.len());
    }

    #[test]
    fn on_off_confines_arrivals_to_on_windows() {
        let p = ArrivalProcess::OnOff {
            on: SimDuration::from_millis(100),
            off: SimDuration::from_millis(400),
            rate_per_sec: 500.0,
        };
        let arrivals = p.times(&mut Pcg32::new(3, 9), SimDuration::from_secs(2), 10_000);
        assert!(!arrivals.is_empty());
        for t in &arrivals {
            let phase = t.as_nanos() % 500_000_000;
            assert!(
                phase < 100_000_000,
                "arrival at {phase} ns is in an OFF window"
            );
        }
    }

    #[test]
    fn zipf_skews_toward_low_tenants() {
        let z = ZipfTenants::new(8, 1.2);
        let mut rng = Pcg32::new(11, 4);
        let mut counts = [0u32; 8];
        for _ in 0..4000 {
            counts[z.draw(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[3], "tenant 0 beats tenant 3: {counts:?}");
        assert!(counts[0] > counts[7], "tenant 0 beats tenant 7: {counts:?}");
        assert!(
            counts.iter().all(|&c| c > 0),
            "all tenants drawn: {counts:?}"
        );
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let z = ZipfTenants::new(4, 0.0);
        let mut rng = Pcg32::new(5, 5);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[z.draw(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "uniform-ish: {counts:?}");
        }
    }

    #[test]
    fn plan_is_pure_and_respects_populations() {
        let spec = FleetSpec {
            surge: Some(SurgeSpec::default()),
            ..FleetSpec::default()
        };
        let a = spec.plan();
        let b = spec.plan();
        assert_eq!(a, b, "plan is a pure function of the spec");
        let hogs = a.iter().filter(|p| p.hog && !p.surge).count();
        let surge = a.iter().filter(|p| p.surge).count();
        let tasks = a.iter().filter(|p| !p.hog).count();
        assert!(hogs <= spec.hogs as usize);
        assert_eq!(surge, 8);
        assert!(tasks <= spec.tasks as usize);
        let at = SurgeSpec::default().at;
        assert!(a.iter().filter(|p| p.surge).all(|p| p.start == at));
        for p in &a {
            if !p.hog {
                assert!((spec.task_pages_min..=spec.task_pages_max).contains(&p.pages));
            }
        }
    }

    #[test]
    fn growing_the_hog_population_leaves_tasks_untouched() {
        let small = FleetSpec::default();
        let big = FleetSpec {
            hogs: small.hogs * 4,
            ..small.clone()
        };
        let tasks_small: Vec<_> = small.plan().into_iter().filter(|p| !p.hog).collect();
        let tasks_big: Vec<_> = big.plan().into_iter().filter(|p| !p.hog).collect();
        assert_eq!(tasks_small, tasks_big, "independent streams per concern");
    }

    #[test]
    fn fleet_hog_terminates_with_release_behind() {
        let mut hog = FleetHog::new(Vpn(100), 4, 2, 77);
        let mut touches = 0;
        let mut releases = 0;
        let mut retired = false;
        for _ in 0..200 {
            match hog.next_op() {
                Op::Touch { .. } => touches += 1,
                Op::ReleaseHint { tag, priority, .. } => {
                    assert_eq!(tag, 77);
                    assert_eq!(priority, 1);
                    releases += 1;
                }
                Op::RetireTag { tag } => {
                    assert_eq!(tag, 77);
                    retired = true;
                }
                Op::End => break,
                _ => {}
            }
        }
        assert_eq!(touches, 8, "4 pages x 2 sweeps");
        assert_eq!(releases, 8, "one release per touch");
        assert!(retired);
        assert_eq!(hog.next_op(), Op::End, "End repeats");
    }
}
