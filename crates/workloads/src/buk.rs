//! BUK — the NAS integer ("bucket") sort.
//!
//! "The data set consists of two very large sequentially-accessed arrays
//! and a third equally large randomly-accessed array. The compiler inserts
//! releases for the first two, but does not try to release the third
//! because it cannot reason about any locality that may exist. The result
//! is that demand for new pages is satisfied by the releases of the first
//! two arrays and the pages of the third array are able to remain mostly
//! in memory." (paper §4.3)
//!
//! Structure here: a key array `key` is read sequentially and scattered
//! into a large `rank` array via indirection (`rank[key[i]]`); a second
//! pass copies keys sequentially to `keyout`.

use std::collections::HashMap;

use compiler::expr::{Affine, Bound};
use compiler::ir::{ArrayRef, Index, LoopId, NestBuilder, SourceProgram};
use runtime::{IndirectGen, TripSpec};

use crate::spec::{ArraySpec, BenchSpec, Table2Row};

/// Number of keys per pass (kept modest: indirect loops execute at element
/// granularity in the simulator). Keys are 64-byte records, so the two
/// sequential arrays are 64 MB each — "very large", as the paper says.
pub const KEYS: i64 = 1_000_000;
/// Element size of the key records.
pub const KEY_ELEM: u64 = 64;
/// Size of the randomly-accessed rank array (8.19M f64 ≈ 64 MB — just
/// under physical memory, so it *can* remain resident when the released
/// key streams satisfy the demand for new pages, and loses pages to the
/// clock otherwise).
pub const RANKS: i64 = 8_192_000;
/// Ranking passes.
pub const PASSES: u32 = 2;

/// Builds the BUK benchmark.
pub fn spec() -> BenchSpec {
    let mut p = SourceProgram::new("BUK");
    let key = p.array("key", KEY_ELEM, vec![Bound::Known(KEYS)]);
    let rank = p.array("rank", 8, vec![Bound::Known(RANKS)]);
    let keyout = p.array("keyout", KEY_ELEM, vec![Bound::Known(KEYS)]);
    let i = LoopId(0);
    p.nest(
        NestBuilder::new("rank-scatter")
            .counted_loop(Bound::Known(KEYS))
            .work_ns(60)
            .reference(ArrayRef::read(key, vec![Index::aff(Affine::var(i))]))
            .reference(ArrayRef::write(
                rank,
                vec![Index::Indirect {
                    via: key,
                    subscript: Affine::var(i),
                }],
            ))
            .build(),
    );
    p.nest(
        NestBuilder::new("key-copy")
            .counted_loop(Bound::Known(KEYS))
            .work_ns(25)
            .reference(ArrayRef::read(key, vec![Index::aff(Affine::var(i))]))
            .reference(ArrayRef::write(keyout, vec![Index::aff(Affine::var(i))]))
            .build(),
    );
    let mut indirect = HashMap::new();
    indirect.insert(
        key,
        IndirectGen {
            seed: 0xB0B,
            range: RANKS as u64,
        },
    );
    BenchSpec {
        name: "BUK".into(),
        source: p,
        arrays: vec![
            ArraySpec {
                dims: vec![KEYS],
                elem_size: KEY_ELEM,
            },
            ArraySpec {
                dims: vec![RANKS],
                elem_size: 8,
            },
            ArraySpec {
                dims: vec![KEYS],
                elem_size: KEY_ELEM,
            },
        ],
        trips: vec![vec![TripSpec::Static], vec![TripSpec::Static]],
        indirect,
        invocations: PASSES,
        table2: Table2Row {
            description: "integer bucket sort: sequential key streams + random rank scatter",
            structure: "1-D loops; indirect references (rank[key[i]])",
            analysis_difficulty:
                "indirect refs unanalyzable; released arrays shield the random one",
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compiler::{compile, CompileOptions, MachineModel};

    #[test]
    fn sizes_and_consistency() {
        let s = spec();
        let mb = s.data_set_bytes() as f64 / (1024.0 * 1024.0);
        assert!((150.0..250.0).contains(&mb), "{mb} MB");
        s.validate();
    }

    #[test]
    fn random_array_is_never_released() {
        let s = spec();
        let prog = compile(
            &s.source,
            &CompileOptions::prefetch_and_release(MachineModel::origin200()),
        );
        // Nest 0: key (seq) released, rank (indirect) not.
        let d0 = &prog.nests[0].directives;
        assert!(d0[0].release.is_some(), "sequential key array released");
        assert!(
            d0[1].release.is_none(),
            "indirect rank array never released"
        );
        // Nest 1: both sequential arrays released at priority 0.
        let d1 = &prog.nests[1].directives;
        assert_eq!(d1[0].release.unwrap().priority, 0);
        assert_eq!(d1[1].release.unwrap().priority, 0);
    }

    #[test]
    fn indirect_loop_iteration_budget() {
        // The scatter loop runs at element granularity: keep it ≤ ~4M.
        let s = spec();
        assert!(s.estimated_iterations() <= 8_000_000);
    }
}
