//! CGM — the NAS conjugate-gradient benchmark.
//!
//! Sparse matrix-vector products (indirect column gathers) interleaved with
//! vector updates. The loop bounds are run-time values the compiler cannot
//! see, so it must insert hints everywhere; at run time "most of these
//! loops are small and prefetches and releases are not needed", producing
//! the "very large number of unnecessary prefetch and release requests
//! \[that\] need to be filtered out by the run-time layer" — the biggest
//! user-time overhead in the paper's Figure 7.

use std::collections::HashMap;

use compiler::expr::{Affine, Bound};
use compiler::ir::{ArrayRef, Index, LoopId, NestBuilder, SourceProgram};
use runtime::{IndirectGen, TripSpec};

use crate::spec::{ArraySpec, BenchSpec, Table2Row};

/// Nonzeros in the sparse matrix (value stream).
pub const NNZ: i64 = 1_500_000;
/// Length of the gathered vector `p`.
pub const VLEN: i64 = 1_500_000;
/// Length of the big dense work vectors.
pub const DENSE: i64 = 8_000_000;
/// Iterations of the small residual-reduction loops.
pub const SMALL: i64 = 24;
/// CG iterations (invocations).
pub const CG_ITERS: u32 = 2;

fn unknown(estimate: i64) -> Bound {
    Bound::Unknown { estimate }
}

/// Builds the CGM benchmark.
pub fn spec() -> BenchSpec {
    let mut p = SourceProgram::new("CGM");
    // aval carries value+index packed per nonzero (32 B/elem).
    let aval = p.array("aval", 32, vec![unknown(NNZ)]);
    let colidx = p.array("colidx", 4, vec![unknown(NNZ)]);
    let pv = p.array("p", 8, vec![unknown(VLEN)]);
    let z = p.array("z", 8, vec![unknown(DENSE)]);
    let r = p.array("r", 8, vec![unknown(DENSE)]);
    let q = p.array("q", 8, vec![unknown(SMALL)]);
    let i = LoopId(0);

    // The sparse gather: sequential streams + an indirect vector access.
    p.nest(
        NestBuilder::new("spmv-gather")
            .counted_loop(unknown(NNZ))
            .work_ns(45)
            .reference(ArrayRef::read(aval, vec![Index::aff(Affine::var(i))]))
            .reference(ArrayRef::read(colidx, vec![Index::aff(Affine::var(i))]))
            .reference(ArrayRef::read(
                pv,
                vec![Index::Indirect {
                    via: colidx,
                    subscript: Affine::var(i),
                }],
            ))
            .build(),
    );
    // Two large dense vector updates.
    p.nest(
        NestBuilder::new("axpy-z")
            .counted_loop(unknown(DENSE))
            .work_ns(30)
            .reference(ArrayRef::read(z, vec![Index::aff(Affine::var(i))]))
            .reference(ArrayRef::write(r, vec![Index::aff(Affine::var(i))]))
            .build(),
    );
    p.nest(
        NestBuilder::new("axpy-r")
            .counted_loop(unknown(DENSE))
            .work_ns(30)
            .reference(ArrayRef::read(r, vec![Index::aff(Affine::var(i))]))
            .reference(ArrayRef::write(z, vec![Index::aff(Affine::var(i))]))
            .build(),
    );
    // A handful of reduction loops that turn out to be tiny at run time:
    // the compiler can't know, so each gets the full hint treatment.
    for k in 0..4 {
        p.nest(
            NestBuilder::new(format!("reduce-{k}"))
                .counted_loop(unknown(VLEN))
                .work_ns(20)
                .reference(ArrayRef::read(q, vec![Index::aff(Affine::var(i))]))
                .build(),
        );
    }

    let mut indirect = HashMap::new();
    indirect.insert(
        colidx,
        IndirectGen {
            seed: 0xC6,
            range: VLEN as u64,
        },
    );
    BenchSpec {
        name: "CGM".into(),
        source: p,
        arrays: vec![
            ArraySpec {
                dims: vec![NNZ],
                elem_size: 32,
            },
            ArraySpec {
                dims: vec![NNZ],
                elem_size: 4,
            },
            ArraySpec {
                dims: vec![VLEN],
                elem_size: 8,
            },
            ArraySpec {
                dims: vec![DENSE],
                elem_size: 8,
            },
            ArraySpec {
                dims: vec![DENSE],
                elem_size: 8,
            },
            ArraySpec {
                dims: vec![SMALL],
                elem_size: 8,
            },
        ],
        trips: vec![
            vec![TripSpec::Actual(NNZ)],
            vec![TripSpec::Actual(DENSE)],
            vec![TripSpec::Actual(DENSE)],
            vec![TripSpec::Actual(SMALL)],
            vec![TripSpec::Actual(SMALL)],
            vec![TripSpec::Actual(SMALL)],
            vec![TripSpec::Actual(SMALL)],
        ],
        indirect,
        invocations: CG_ITERS,
        table2: Table2Row {
            description: "conjugate gradient: sparse gathers + dense vector updates",
            structure: "unknown loop bounds and indirect references",
            analysis_difficulty: "bounds invisible; huge hint overhead filtered at run time",
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compiler::{compile, CompileOptions, MachineModel};

    #[test]
    fn sizes_and_consistency() {
        let s = spec();
        let mb = s.data_set_bytes() as f64 / (1024.0 * 1024.0);
        assert!((150.0..250.0).contains(&mb), "{mb} MB");
        s.validate();
    }

    #[test]
    fn hints_inserted_despite_tiny_runtime_loops() {
        let s = spec();
        let prog = compile(
            &s.source,
            &CompileOptions::prefetch_and_release(MachineModel::origin200()),
        );
        // The tiny reduce loops still get prefetch + release hints
        // (unknown bounds assume worst case) — the unnecessary requests the
        // run-time layer must filter.
        for nest in prog.nests.iter().skip(3) {
            assert!(nest.prefetch_count() > 0);
            assert!(nest.release_count() > 0);
        }
        // The indirect gather of p is never released.
        assert!(prog.nests[0].directives[2].release.is_none());
    }

    #[test]
    fn iteration_budget() {
        let s = spec();
        assert!(s.estimated_iterations() <= 40_000_000);
    }
}
