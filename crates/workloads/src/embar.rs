//! EMBAR — the NAS "embarrassingly parallel" benchmark.
//!
//! Generates a large table of pseudorandom deviates, then performs heavy
//! per-element computation over it (Gaussian acceptance/rejection). Both
//! phases are single 1-D loops with known bounds over a 384 MB array —
//! "EMBAR has only one-dimensional loops … the compiler analysis is
//! essentially perfect" (paper §4.2).
//!
//! The two phases are *independent nests*, so the inter-nest reuse of `x`
//! is invisible to the compiler ("reuses that occur between independent
//! sets of loops are not considered") and both phases stream with
//! priority-0 releases.

use std::collections::HashMap;

use compiler::expr::{Affine, Bound};
use compiler::ir::{ArrayRef, Index, LoopId, NestBuilder, SourceProgram};
use runtime::TripSpec;

use crate::spec::{ArraySpec, BenchSpec, Table2Row};

/// Elements of the deviate table (48M f64 = 384 MB).
pub const N: i64 = 48_000_000;

/// Builds the EMBAR benchmark.
pub fn spec() -> BenchSpec {
    let mut p = SourceProgram::new("EMBAR");
    let x = p.array("x", 8, vec![Bound::Known(N)]);
    let i = LoopId(0);
    p.nest(
        NestBuilder::new("generate-deviates")
            .counted_loop(Bound::Known(N))
            .work_ns(90)
            .reference(ArrayRef::write(x, vec![Index::aff(Affine::var(i))]))
            .build(),
    );
    p.nest(
        NestBuilder::new("gaussian-pairs")
            .counted_loop(Bound::Known(N))
            .work_ns(260)
            .reference(ArrayRef::read(x, vec![Index::aff(Affine::var(i))]))
            .build(),
    );
    BenchSpec {
        name: "EMBAR".into(),
        source: p,
        arrays: vec![ArraySpec {
            dims: vec![N],
            elem_size: 8,
        }],
        trips: vec![vec![TripSpec::Static], vec![TripSpec::Static]],
        indirect: HashMap::new(),
        invocations: 1,
        table2: Table2Row {
            description: "pseudorandom deviate generation + Gaussian pair counting",
            structure: "one-dimensional loops with known bounds",
            analysis_difficulty: "essentially perfect",
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compiler::{compile, CompileOptions, MachineModel};

    #[test]
    fn sizes_and_consistency() {
        let s = spec();
        let mb = s.data_set_bytes() as f64 / (1024.0 * 1024.0);
        assert!((300.0..450.0).contains(&mb));
        s.validate();
    }

    #[test]
    fn both_nests_stream_at_priority_zero() {
        let s = spec();
        let prog = compile(
            &s.source,
            &CompileOptions::prefetch_and_release(MachineModel::origin200()),
        );
        for nest in &prog.nests {
            let d = &nest.directives[0];
            assert!(d.prefetch.is_some());
            assert_eq!(d.release.unwrap().priority, 0);
        }
    }
}
