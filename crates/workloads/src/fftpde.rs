//! FFTPDE — the NAS 3-D FFT PDE solver.
//!
//! Butterfly passes re-sweep the whole 384 MB array once per stage. The
//! stage-carried temporal reuse is real but spans the entire data set, so
//! every release carries a nonzero Eq. 2 priority — and the paper's
//! buffered run-time layer "incorrectly attempt\[s\] to retain pages with no
//! \[exploitable\] reuse", performing "very few useful releases" and failing
//! to keep memory free (the Figure 10b outlier).
//!
//! The paper traces this to strides loaded from memory that make accesses
//! look loop-invariant; we additionally model that literal mechanism on the
//! twiddle-table reference via [`compiler::ir::ArrayRef::seen`]: the
//! compiler sees a stage-indexed scalar access while the run-time access
//! actually strides.

use std::collections::HashMap;

use compiler::expr::{Affine, Bound};
use compiler::ir::{ArrayRef, Index, LoopId, NestBuilder, SourceProgram};
use runtime::TripSpec;

use crate::spec::{ArraySpec, BenchSpec, Table2Row};

/// Complex elements of the field (24M × 16 B = 384 MB).
pub const N: i64 = 24_000_000;
/// Butterfly stages per run.
pub const STAGES: i64 = 3;
/// Twiddle-factor table elements.
pub const TWIDDLES: i64 = 65_536;

fn unknown(estimate: i64) -> Bound {
    Bound::Unknown { estimate }
}

/// Builds the FFTPDE benchmark.
pub fn spec() -> BenchSpec {
    let mut p = SourceProgram::new("FFTPDE");
    let x = p.array("x", 16, vec![unknown(N)]);
    let w = p.array("w", 16, vec![Bound::Known(TWIDDLES)]);
    let (s, t) = (LoopId(0), LoopId(1));

    // Initialization: sequential fill of the field.
    p.nest(
        NestBuilder::new("init")
            .counted_loop(unknown(N))
            .work_ns(30)
            .reference(ArrayRef::write(x, vec![Index::aff(Affine::var(LoopId(0)))]))
            .build(),
    );

    // Butterfly passes: each stage re-sweeps all of x. The stage loop
    // carries (useless) temporal reuse, so releases get priority 1.
    // The twiddle access really strides through w, but its stride comes
    // from memory: the compiler sees a stage-only access.
    let mut tw = ArrayRef::read(
        w,
        vec![Index::aff(
            // Runtime: walk w with a modest stride per butterfly.
            Affine::constant(0).plus_term(t, 1),
        )],
    );
    tw.seen = Some(vec![Index::aff(Affine::var(s))]);
    p.nest(
        NestBuilder::new("butterfly")
            .counted_loop(unknown(STAGES))
            .counted_loop(unknown(N))
            .work_ns(45)
            .reference(ArrayRef::read(x, vec![Index::aff(Affine::var(t))]))
            .reference(ArrayRef::write(x, vec![Index::aff(Affine::var(t))]))
            .reference(tw)
            .build(),
    );

    BenchSpec {
        name: "FFTPDE".into(),
        source: p,
        arrays: vec![
            ArraySpec {
                dims: vec![N],
                elem_size: 16,
            },
            ArraySpec {
                dims: vec![TWIDDLES],
                elem_size: 16,
            },
        ],
        trips: vec![
            vec![TripSpec::Actual(N)],
            vec![TripSpec::Actual(STAGES), TripSpec::Actual(N)],
        ],
        indirect: HashMap::new(),
        invocations: 1,
        table2: Table2Row {
            description: "3-D FFT PDE solver: staged butterfly sweeps over the field",
            structure: "stride changes within a nest; stage-carried reuse spans the data set",
            analysis_difficulty: "spurious/unexploitable reuse → misprioritized releases",
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compiler::{compile, CompileOptions, MachineModel};

    #[test]
    fn sizes_and_consistency() {
        let s = spec();
        let mb = s.data_set_bytes() as f64 / (1024.0 * 1024.0);
        assert!((300.0..450.0).contains(&mb), "{mb} MB");
        s.validate();
    }

    #[test]
    fn butterfly_releases_carry_reuse_priority() {
        let s = spec();
        let prog = compile(
            &s.source,
            &CompileOptions::prefetch_and_release(MachineModel::origin200()),
        );
        // init streams at priority 0.
        assert_eq!(prog.nests[0].directives[0].release.unwrap().priority, 0);
        // The butterfly x-group's release has priority 1 (stage reuse,
        // depth 0): buffering will hoard these.
        let bf = &prog.nests[1].directives;
        let rel = bf
            .iter()
            .find_map(|d| d.release)
            .expect("butterfly releases x");
        assert_eq!(rel.priority, 1);
        // The twiddle ref looks stage-indexed to the compiler: temporal
        // reuse in t → locality → never released.
        assert!(bf[2].release.is_none());
    }

    #[test]
    fn seen_override_diverges_from_runtime() {
        let s = spec();
        let tw = &s.source.nests[1].refs[2];
        assert!(tw.seen.is_some());
        // Runtime index depends on t; seen index does not.
        let rt = tw.indices[0].as_affine().unwrap();
        let seen = tw.seen_indices()[0].as_affine().unwrap();
        assert!(rt.uses(LoopId(1)));
        assert!(!seen.uses(LoopId(1)));
    }
}
