//! Seeded fuzz workloads: [`compiler::gen`] programs as runnable specs.
//!
//! [`compiler::gen::generate`] emits a valid-by-construction
//! [`compiler::SourceProgram`] plus neutral runtime truth (actual extents,
//! trip plans, indirection wiring). This module assembles that into a
//! [`BenchSpec`] the engine can install like any paper benchmark — which
//! is what lets `RunRequest::bench_spec` drive thousands of generated
//! programs through the full pipeline and the checked-mode sanitizer.

use std::collections::HashMap;

use compiler::gen::{generate_with, GenConfig, GenProgram, TripPlan};
use runtime::{IndirectGen, TripSpec};

use crate::spec::{ArraySpec, BenchSpec, Table2Row};

/// The fuzz workload for `seed` under the default generator config.
pub fn spec(seed: u64) -> BenchSpec {
    spec_with(seed, &GenConfig::default())
}

/// The fuzz workload for `seed` under an explicit generator config.
pub fn spec_with(seed: u64, cfg: &GenConfig) -> BenchSpec {
    from_gen(generate_with(seed, cfg))
}

/// Wraps an already-generated program (used by the minimizer, which edits
/// the program between reproduction attempts).
pub fn from_gen(gp: GenProgram) -> BenchSpec {
    let arrays = gp
        .actual_dims
        .iter()
        .zip(&gp.source.arrays)
        .map(|(dims, decl)| ArraySpec {
            dims: dims.clone(),
            elem_size: decl.elem_size,
        })
        .collect();
    let trips = gp
        .trips
        .iter()
        .map(|nest| {
            nest.iter()
                .map(|t| match t {
                    TripPlan::Static => TripSpec::Static,
                    TripPlan::Actual(v) => TripSpec::Actual(*v),
                    TripPlan::Cycle(vs) => TripSpec::Cycle(vs.clone()),
                })
                .collect()
        })
        .collect();
    let indirect: HashMap<_, _> = gp
        .indirect
        .iter()
        .map(|p| {
            (
                p.via,
                IndirectGen {
                    seed: p.seed,
                    range: p.range,
                },
            )
        })
        .collect();
    let spec = BenchSpec {
        name: gp.source.name.clone(),
        source: gp.source,
        arrays,
        trips,
        indirect,
        invocations: gp.invocations,
        table2: Table2Row {
            description: "seeded random loop-nest program",
            structure: "generated nests: affine + indirect refs, unknown bounds",
            analysis_difficulty: "adversarial by construction (fuzzer)",
        },
    };
    spec.validate();
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_specs_validate_and_check() {
        for seed in 0..64u64 {
            let s = spec(seed);
            s.validate();
            assert!(compiler::check_program(&s.source).is_ok(), "seed {seed}");
            assert!(s.data_set_bytes() > 0, "seed {seed}");
        }
    }

    #[test]
    fn same_seed_same_spec() {
        let a = spec(42);
        let b = spec(42);
        assert_eq!(
            compiler::pretty::render_source(&a.source),
            compiler::pretty::render_source(&b.source)
        );
        assert_eq!(a.invocations, b.invocations);
        assert_eq!(a.data_set_bytes(), b.data_set_bytes());
    }

    #[test]
    fn unknown_bounds_never_pair_with_static_trips() {
        for seed in 0..64u64 {
            let s = spec(seed);
            for (nest, trips) in s.source.nests.iter().zip(&s.trips) {
                for (l, t) in nest.loops.iter().zip(trips) {
                    if !l.count.is_known() {
                        assert!(
                            !matches!(t, TripSpec::Static),
                            "seed {seed}: unknown bound with Static trip would panic at runtime"
                        );
                    }
                }
            }
        }
    }
}
