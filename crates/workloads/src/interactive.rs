//! The simulated interactive task (paper §1.1).
//!
//! "A simple program emulates the memory system behavior of an interactive
//! task by repeatedly touching a 1 MB data set, then sleeping for a fixed
//! amount of time. … The 'response time' is the time to touch the entire
//! data set."
//!
//! The task's data set is 65 pages (1 MB of 16 KB pages plus its working
//! text page — the paper's Figure 10c reports hard faults "rising to the
//! maximum level of 65 pages"). It is an ordinary process: no policy
//! module, no hints — exactly what the OS must protect.

use runtime::{Mark, Op, OpStream};
use sim_core::SimDuration;
use vm::Vpn;

/// Pages of the interactive working set.
pub const PAGES: u64 = 65;

/// The interactive-task op stream.
#[derive(Debug)]
pub struct InteractiveTask {
    base: Vpn,
    pages: u64,
    sleep: SimDuration,
    work_per_page: SimDuration,
    max_sweeps: Option<u32>,
    state: State,
    page_cursor: u64,
    sweeps_done: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    StartSweep,
    Touching,
    EndSweep,
    Sleeping,
    Done,
}

impl InteractiveTask {
    /// Creates the task.
    ///
    /// `base` is the first page of its (already mapped) data region;
    /// `sleep` is the think time between sweeps; `max_sweeps` bounds the
    /// run (`None` = run until the simulation stops).
    pub fn new(base: Vpn, sleep: SimDuration, max_sweeps: Option<u32>) -> Self {
        InteractiveTask::with_pages(base, PAGES, sleep, max_sweeps)
    }

    /// The same task shape with a parametric working set — the fleet
    /// arrival processes ([`crate::arrivals`]) draw a per-request size.
    pub fn with_pages(base: Vpn, pages: u64, sleep: SimDuration, max_sweeps: Option<u32>) -> Self {
        InteractiveTask {
            base,
            pages,
            sleep,
            // Touching the set at memory speed: ~15 µs per 16 KB page.
            work_per_page: SimDuration::from_micros(15),
            max_sweeps,
            state: State::StartSweep,
            page_cursor: 0,
            sweeps_done: 0,
        }
    }

    /// Number of pages in the working set.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Completed sweeps.
    pub fn sweeps_done(&self) -> u32 {
        self.sweeps_done
    }
}

impl OpStream for InteractiveTask {
    fn next_op(&mut self) -> Op {
        match self.state {
            State::StartSweep => {
                self.page_cursor = 0;
                self.state = State::Touching;
                Op::Mark(Mark::SweepStart)
            }
            State::Touching => {
                if self.page_cursor < self.pages {
                    let vpn = Vpn(self.base.0 + self.page_cursor);
                    self.page_cursor += 1;
                    // The first sweep initializes (writes) the data set, so
                    // the pages have real content: an eviction writes them
                    // to swap and a later touch is a hard fault — exactly
                    // the paper's task. Later sweeps only read.
                    Op::Touch {
                        vpn,
                        write: self.sweeps_done == 0,
                    }
                } else {
                    self.state = State::EndSweep;
                    Op::Compute(SimDuration::from_nanos(
                        self.work_per_page.as_nanos() * self.pages,
                    ))
                }
            }
            State::EndSweep => {
                self.sweeps_done += 1;
                if self.max_sweeps.is_some_and(|m| self.sweeps_done >= m) {
                    self.state = State::Done;
                } else {
                    self.state = State::Sleeping;
                }
                Op::Mark(Mark::SweepEnd)
            }
            State::Sleeping => {
                self.state = State::StartSweep;
                Op::Sleep(self.sleep)
            }
            State::Done => Op::End,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(task: &mut InteractiveTask, n: usize) -> Vec<Op> {
        (0..n).map(|_| task.next_op()).collect()
    }

    #[test]
    fn one_sweep_shape() {
        let mut t = InteractiveTask::new(Vpn(100), SimDuration::from_secs(5), Some(1));
        let ops = collect(&mut t, PAGES as usize + 4);
        assert_eq!(ops[0], Op::Mark(Mark::SweepStart));
        let touches = ops.iter().filter(|o| matches!(o, Op::Touch { .. })).count();
        assert_eq!(touches, PAGES as usize);
        assert!(ops.contains(&Op::Mark(Mark::SweepEnd)));
        assert_eq!(*ops.last().unwrap(), Op::End);
        assert_eq!(t.sweeps_done(), 1);
    }

    #[test]
    fn sleep_between_sweeps() {
        let mut t = InteractiveTask::new(Vpn(0), SimDuration::from_secs(2), Some(2));
        let mut saw_sleep = false;
        loop {
            match t.next_op() {
                Op::Sleep(d) => {
                    assert_eq!(d, SimDuration::from_secs(2));
                    saw_sleep = true;
                }
                Op::End => break,
                _ => {}
            }
        }
        assert!(saw_sleep);
        assert_eq!(t.sweeps_done(), 2);
    }

    #[test]
    fn unbounded_task_keeps_running() {
        let mut t = InteractiveTask::new(Vpn(0), SimDuration::from_secs(1), None);
        for _ in 0..1000 {
            assert_ne!(t.next_op(), Op::End);
        }
    }

    #[test]
    fn touches_cover_the_working_set_in_order() {
        let mut t = InteractiveTask::new(Vpn(500), SimDuration::from_secs(1), Some(1));
        let mut pages = Vec::new();
        loop {
            match t.next_op() {
                Op::Touch { vpn, .. } => pages.push(vpn.0),
                Op::End => break,
                _ => {}
            }
        }
        let expect: Vec<u64> = (500..500 + PAGES).collect();
        assert_eq!(pages, expect);
    }
}
