//! The paper's workloads.
//!
//! Out-of-core versions of five NAS Parallel benchmarks plus a
//! matrix-vector kernel (Table 2 of the paper), each expressed as a
//! loop-nest [`compiler::SourceProgram`] with run-time
//! [`runtime::Bindings`], and the simulated **interactive task** of §1.1
//! (touch 1 MB, sleep, repeat).
//!
//! Each benchmark reproduces the *access-pattern structure* the paper
//! attributes to it:
//!
//! | benchmark | structure | pathology |
//! |---|---|---|
//! | [`embar`]  | 1-D loops, known bounds | none — "essentially perfect" analysis |
//! | [`matvec`] | multi-dim loops, known bounds | vector reused across rows; aggressive releasing thrashes it |
//! | [`buk`]    | indirect references | random array must not be released |
//! | [`cgm`]    | unknown bounds + indirect | flood of unnecessary hints, filtered at run time |
//! | [`mgrid`]  | unknown bounds changing per call | one code version cannot release optimally |
//! | [`fftpde`] | stride changes within a nest | compiler sees spurious temporal reuse |
//!
//! Data sets are sized relative to the simulated 75 MB machine exactly as
//! the paper sized them against its real one (several times physical
//! memory).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod arrivals;
pub mod buk;
pub mod cgm;
pub mod embar;
pub mod fftpde;
pub mod fuzz;
pub mod interactive;
pub mod matvec;
pub mod mgrid;
pub mod spec;
pub mod stencil;

pub use adversary::AdversaryTask;
pub use arrivals::{ArrivalProcess, FleetArrival, FleetHog, FleetSpec, SurgeSpec, ZipfTenants};
pub use interactive::InteractiveTask;
pub use spec::{ArraySpec, BenchSpec, Table2Row};

/// All six out-of-core benchmarks, in the paper's presentation order.
pub fn all_benchmarks() -> Vec<BenchSpec> {
    vec![
        embar::spec(),
        matvec::spec(),
        buk::spec(),
        cgm::spec(),
        mgrid::spec(),
        fftpde::spec(),
    ]
}

/// The paper's six benchmarks plus this reproduction's extensions
/// (currently [`stencil`], the §2.4 example).
pub fn extended_benchmarks() -> Vec<BenchSpec> {
    let mut all = all_benchmarks();
    all.push(stencil::spec());
    all
}

/// Looks a benchmark up by (case-insensitive) name, including extensions.
pub fn benchmark(name: &str) -> Option<BenchSpec> {
    extended_benchmarks()
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_benchmarks_present() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 6);
        let names: Vec<&str> = all.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["EMBAR", "MATVEC", "BUK", "CGM", "MGRID", "FFTPDE"]
        );
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(benchmark("matvec").is_some());
        assert!(benchmark("Buk").is_some());
        assert!(benchmark("stencil").is_some(), "extensions resolvable");
        assert!(benchmark("nope").is_none());
    }

    #[test]
    fn extended_set_adds_stencil_only() {
        let ext = extended_benchmarks();
        assert_eq!(ext.len(), 7);
        assert_eq!(ext.last().unwrap().name, "STENCIL");
    }

    #[test]
    fn all_benchmarks_are_out_of_core() {
        // Every data set exceeds the 75 MB machine.
        for b in all_benchmarks() {
            let mb = b.data_set_bytes() as f64 / (1024.0 * 1024.0);
            assert!(mb > 75.0, "{} is only {mb:.1} MB", b.name);
            assert!(mb < 600.0, "{} is implausibly large: {mb:.1} MB", b.name);
        }
    }

    #[test]
    fn all_specs_internally_consistent() {
        for b in all_benchmarks() {
            b.validate();
        }
    }

    #[test]
    fn all_sources_pass_the_fallible_checker() {
        for b in extended_benchmarks() {
            if let Err(errs) = compiler::check_program(&b.source) {
                panic!("{}: {errs:?}", b.name);
            }
        }
    }
}
