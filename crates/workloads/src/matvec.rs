//! MATVEC — the matrix-vector multiplication kernel.
//!
//! `for i { for j { y[i] += a[i][j] * x[j] } }`, repeated, over an
//! out-of-core data set of ~400 MB: a wide 6 × 6.55M f64 matrix (315 MB)
//! and a 6.55M-element vector (52 MB). Both operands vastly exceed the
//! machine's 75 MB, so the compiler (correctly) concludes that `x`'s
//! temporal reuse across rows cannot be exploited in memory and inserts a
//! release for it **with priority 1** (Eq. 2, reuse carried by the depth-0
//! loop), while the matrix streams at priority 0.
//!
//! This is the benchmark where the aggressive and buffered run-time layers
//! diverge dramatically (paper §4.3): aggressive releasing throws the
//! vector away every row and fights the releaser to get it back; buffering
//! keeps the vector resident and releases only the matrix.

use std::collections::HashMap;

use compiler::expr::{Affine, Bound};
use compiler::ir::{ArrayRef, Index, LoopId, NestBuilder, SourceProgram};
use runtime::TripSpec;

use crate::spec::{ArraySpec, BenchSpec, Table2Row};

/// Matrix rows.
pub const ROWS: i64 = 6;
/// Matrix columns = vector length (6.55M f64 ≈ 52 MB).
pub const COLS: i64 = 6_553_600;
/// Sweeps (repeated multiplications).
pub const SWEEPS: u32 = 2;

/// Builds the MATVEC benchmark.
pub fn spec() -> BenchSpec {
    let mut p = SourceProgram::new("MATVEC");
    let a = p.array("a", 8, vec![Bound::Known(ROWS), Bound::Known(COLS)]);
    let x = p.array("x", 8, vec![Bound::Known(COLS)]);
    let y = p.array("y", 8, vec![Bound::Known(ROWS)]);
    let i = LoopId(0);
    let j = LoopId(1);
    p.nest(
        NestBuilder::new("matvec-main")
            .counted_loop(Bound::Known(ROWS))
            .counted_loop(Bound::Known(COLS))
            .work_ns(35)
            .reference(ArrayRef::read(
                a,
                vec![Index::aff(Affine::var(i)), Index::aff(Affine::var(j))],
            ))
            .reference(ArrayRef::read(x, vec![Index::aff(Affine::var(j))]))
            .reference(ArrayRef::write(y, vec![Index::aff(Affine::var(i))]))
            .build(),
    );
    BenchSpec {
        name: "MATVEC".into(),
        source: p,
        arrays: vec![
            ArraySpec {
                dims: vec![ROWS, COLS],
                elem_size: 8,
            },
            ArraySpec {
                dims: vec![COLS],
                elem_size: 8,
            },
            ArraySpec {
                dims: vec![ROWS],
                elem_size: 8,
            },
        ],
        trips: vec![vec![TripSpec::Static, TripSpec::Static]],
        indirect: HashMap::new(),
        invocations: SWEEPS,
        table2: Table2Row {
            description: "dense matrix-vector multiplication, repeated",
            structure: "multi-dimensional loops with known bounds",
            analysis_difficulty: "essentially perfect; vector reuse exceeds memory",
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compiler::{compile, CompileOptions, MachineModel};

    #[test]
    fn data_set_is_about_400_mb() {
        let s = spec();
        let mb = s.data_set_bytes() as f64 / (1024.0 * 1024.0);
        assert!((350.0..450.0).contains(&mb), "{mb} MB");
        s.validate();
    }

    #[test]
    fn compiled_directives_match_the_paper_story() {
        let s = spec();
        let prog = compile(
            &s.source,
            &CompileOptions::prefetch_and_release(MachineModel::origin200()),
        );
        let d = &prog.nests[0].directives;
        // Matrix streams at priority 0.
        assert_eq!(d[0].release.unwrap().priority, 0);
        // Vector released with priority 1 (reuse at the i-loop, depth 0).
        assert_eq!(d[1].release.unwrap().priority, 1);
        // y is tiny and reused immediately: never released.
        assert!(d[2].release.is_none());
        // Both big operands are prefetched.
        assert!(d[0].prefetch.is_some());
        assert!(d[1].prefetch.is_some());
    }

    #[test]
    fn iteration_budget_is_tractable() {
        // Raw innermost iterations are ~79M; the page-granularity executor
        // fast-forwards them, but the estimate guards against accidental
        // explosion when editing sizes.
        let s = spec();
        assert!(s.estimated_iterations() < 100_000_000);
    }
}
