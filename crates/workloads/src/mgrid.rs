//! MGRID — the NAS multigrid benchmark.
//!
//! 3-D stencil sweeps (residual and smoothing) over grids whose extents
//! halve and re-double as the V-cycle descends and ascends. "In MGRID the
//! loop bounds change dynamically on different calls to the same
//! procedures, making it impossible to release memory optimally in all
//! cases, since we only generate a single version of the code" (§4.2).
//! The loop bounds are procedure parameters — unknown to the compiler —
//! and the run-time trips cycle through the V-cycle levels.

use std::collections::HashMap;

use compiler::expr::{Affine, Bound};
use compiler::ir::{ArrayRef, Index, LoopId, NestBuilder, SourceProgram};
use runtime::TripSpec;

use crate::spec::{ArraySpec, BenchSpec, Table2Row};

/// Finest grid extent (160³ f64 = 32.8 MB per grid).
pub const N: i64 = 160;
/// The V-cycle levels visited, one per invocation.
pub const LEVELS: [i64; 5] = [160, 80, 40, 80, 160];

fn unknown() -> Bound {
    Bound::Unknown { estimate: N }
}

fn stencil_refs(
    b: NestBuilder,
    grid: compiler::ir::ArrayId,
    i: LoopId,
    j: LoopId,
    k: LoopId,
) -> NestBuilder {
    // Seven-point stencil: ±1 in each dimension plus the centre.
    let offsets: [(i64, i64, i64); 7] = [
        (-1, 0, 0),
        (1, 0, 0),
        (0, -1, 0),
        (0, 1, 0),
        (0, 0, -1),
        (0, 0, 1),
        (0, 0, 0),
    ];
    let mut b = b;
    for (di, dj, dk) in offsets {
        b = b.reference(ArrayRef::read(
            grid,
            vec![
                Index::aff(Affine::var(i).plus_const(di)),
                Index::aff(Affine::var(j).plus_const(dj)),
                Index::aff(Affine::var(k).plus_const(dk)),
            ],
        ));
    }
    b
}

/// Builds the MGRID benchmark.
pub fn spec() -> BenchSpec {
    let mut p = SourceProgram::new("MGRID");
    let u = p.array("u", 8, vec![unknown(), unknown(), unknown()]);
    let v = p.array("v", 8, vec![unknown(), unknown(), unknown()]);
    let r = p.array("r", 8, vec![unknown(), unknown(), unknown()]);
    let (i, j, k) = (LoopId(0), LoopId(1), LoopId(2));
    let centre = |g| {
        ArrayRef::write(
            g,
            vec![
                Index::aff(Affine::var(i)),
                Index::aff(Affine::var(j)),
                Index::aff(Affine::var(k)),
            ],
        )
    };

    // resid: r = v - A·u (stencil over u, read v, write r).
    let mut nest = NestBuilder::new("resid")
        .counted_loop(unknown())
        .counted_loop(unknown())
        .counted_loop(unknown())
        .work_ns(55);
    nest = stencil_refs(nest, u, i, j, k);
    nest = nest.reference(ArrayRef::read(
        v,
        vec![
            Index::aff(Affine::var(i)),
            Index::aff(Affine::var(j)),
            Index::aff(Affine::var(k)),
        ],
    ));
    nest = nest.reference(centre(r));
    p.nest(nest.build());

    // psinv: u = u + M·r (stencil over r, update u).
    let mut nest = NestBuilder::new("psinv")
        .counted_loop(unknown())
        .counted_loop(unknown())
        .counted_loop(unknown())
        .work_ns(55);
    nest = stencil_refs(nest, r, i, j, k);
    nest = nest.reference(centre(u));
    p.nest(nest.build());

    let level_trips = || {
        vec![
            TripSpec::Cycle(LEVELS.to_vec()),
            TripSpec::Cycle(LEVELS.to_vec()),
            TripSpec::Cycle(LEVELS.to_vec()),
        ]
    };
    BenchSpec {
        name: "MGRID".into(),
        source: p,
        arrays: vec![
            ArraySpec {
                dims: vec![N, N, N],
                elem_size: 8,
            },
            ArraySpec {
                dims: vec![N, N, N],
                elem_size: 8,
            },
            ArraySpec {
                dims: vec![N, N, N],
                elem_size: 8,
            },
        ],
        trips: vec![level_trips(), level_trips()],
        indirect: HashMap::new(),
        invocations: LEVELS.len() as u32,
        table2: Table2Row {
            description: "multigrid V-cycle: 3-D stencil sweeps at varying grid levels",
            structure: "multi-dimensional loops with unknown, call-varying bounds",
            analysis_difficulty: "one code version cannot release optimally at every level",
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compiler::{compile, CompileOptions, MachineModel};

    #[test]
    fn sizes_and_consistency() {
        let s = spec();
        let mb = s.data_set_bytes() as f64 / (1024.0 * 1024.0);
        assert!((80.0..150.0).contains(&mb), "{mb} MB");
        s.validate();
    }

    #[test]
    fn stencil_group_releases_trailing_edge_only() {
        let s = spec();
        let prog = compile(
            &s.source,
            &CompileOptions::prefetch_and_release(MachineModel::origin200()),
        );
        // resid: seven u-refs form one group → exactly one release among
        // them; v and r are separate singleton groups.
        let resid = &prog.nests[0];
        let u_releases = resid.directives[..7]
            .iter()
            .filter(|d| d.release.is_some())
            .count();
        let u_prefetches = resid.directives[..7]
            .iter()
            .filter(|d| d.prefetch.is_some())
            .count();
        assert_eq!(u_releases, 1);
        assert_eq!(u_prefetches, 1);
        assert!(resid.directives[7].release.is_some(), "v released");
        assert!(resid.directives[8].release.is_some(), "r released");
    }

    #[test]
    fn levels_cycle_across_invocations() {
        let s = spec();
        let b = s.trips[0][0].resolve(Bound::Unknown { estimate: N }, 0);
        assert_eq!(b, 160);
        assert_eq!(s.trips[0][0].resolve(Bound::Unknown { estimate: N }, 2), 40);
        assert_eq!(
            s.trips[0][0].resolve(Bound::Unknown { estimate: N }, 4),
            160
        );
    }
}
