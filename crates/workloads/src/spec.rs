//! Benchmark specification: source program + run-time truth.

use std::collections::HashMap;

use compiler::ir::ArrayId;
use compiler::SourceProgram;
use runtime::{ArrayBinding, Bindings, IndirectGen, TripSpec};
use vm::Vpn;

/// Run-time truth about one array (what the bindings will say).
#[derive(Clone, Debug)]
pub struct ArraySpec {
    /// Actual dimension extents (elements).
    pub dims: Vec<i64>,
    /// Element size in bytes.
    pub elem_size: u64,
}

impl ArraySpec {
    /// Total bytes of the array.
    pub fn bytes(&self) -> u64 {
        self.dims.iter().product::<i64>().max(0) as u64 * self.elem_size
    }

    /// Pages the array spans.
    pub fn pages(&self, page_size: u64) -> u64 {
        self.bytes().div_ceil(page_size).max(1)
    }
}

/// One row of the paper's Table 2 (benchmark characteristics).
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// What the benchmark computes.
    pub description: &'static str,
    /// Loop/reference structure, as the paper characterizes it.
    pub structure: &'static str,
    /// Why it is easy or hard for the compiler.
    pub analysis_difficulty: &'static str,
}

/// A complete benchmark: compiler input plus execution truth.
#[derive(Clone, Debug)]
pub struct BenchSpec {
    /// Benchmark name (paper spelling).
    pub name: String,
    /// The loop-nest program handed to the compiler.
    pub source: SourceProgram,
    /// Run-time array extents, indexed like `source.arrays`.
    pub arrays: Vec<ArraySpec>,
    /// Run-time trip counts, per nest per loop.
    pub trips: Vec<Vec<TripSpec>>,
    /// Indirection-array contents.
    pub indirect: HashMap<ArrayId, IndirectGen>,
    /// Sweeps over the data set per run.
    pub invocations: u32,
    /// Table 2 row.
    pub table2: Table2Row,
}

impl BenchSpec {
    /// Total data-set size in bytes.
    pub fn data_set_bytes(&self) -> u64 {
        self.arrays.iter().map(ArraySpec::bytes).sum()
    }

    /// Builds executor bindings once the engine has mapped each array at
    /// `bases[i]` (in declaration order) with the given page size.
    ///
    /// # Panics
    ///
    /// Panics if `bases` doesn't cover every array.
    pub fn bindings(&self, bases: &[Vpn], page_size: u64) -> Bindings {
        assert_eq!(bases.len(), self.arrays.len(), "one base per array");
        Bindings {
            arrays: self
                .arrays
                .iter()
                .zip(bases)
                .map(|(a, &base_vpn)| ArrayBinding {
                    base_vpn,
                    dims: a.dims.clone(),
                    elem_size: a.elem_size,
                })
                .collect(),
            indirect: self.indirect.clone(),
            page_size,
            trips: self.trips.clone(),
            invocations: self.invocations,
        }
    }

    /// Checks internal consistency (arity of arrays/trips vs the source).
    ///
    /// # Panics
    ///
    /// Panics on inconsistency.
    pub fn validate(&self) {
        assert_eq!(
            self.arrays.len(),
            self.source.arrays.len(),
            "{}: array specs must match declarations",
            self.name
        );
        for (spec, decl) in self.arrays.iter().zip(&self.source.arrays) {
            assert_eq!(
                spec.dims.len(),
                decl.dims.len(),
                "{}: dims arity mismatch for {}",
                self.name,
                decl.name
            );
            assert_eq!(spec.elem_size, decl.elem_size);
            for (actual, bound) in spec.dims.iter().zip(&decl.dims) {
                if let Some(v) = bound.known() {
                    assert_eq!(*actual, v, "{}: known dim must match actual", self.name);
                }
            }
        }
        assert_eq!(self.trips.len(), self.source.nests.len());
        for (trips, nest) in self.trips.iter().zip(&self.source.nests) {
            assert_eq!(
                trips.len(),
                nest.loops.len(),
                "{}: {}",
                self.name,
                nest.name
            );
        }
        assert!(self.invocations > 0);
    }

    /// Derives a variant with re-seeded indirection contents (replication
    /// studies: the benchmark's random data changes, its structure does
    /// not). No-op for benchmarks without indirect references.
    pub fn reseed(mut self, seed: u64) -> Self {
        for gen in self.indirect.values_mut() {
            gen.seed = gen
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(seed);
        }
        self
    }

    /// Estimated innermost iterations for one full run (all invocations),
    /// used to keep simulations tractable.
    pub fn estimated_iterations(&self) -> u64 {
        let mut total: u64 = 0;
        for (trips, nest) in self.trips.iter().zip(&self.source.nests) {
            let mut per_invocation: u64 = 0;
            for inv in 0..self.invocations {
                let mut n: u64 = 1;
                for (spec, l) in trips.iter().zip(&nest.loops) {
                    n = n.saturating_mul(spec.resolve(l.count, inv).max(0) as u64);
                }
                per_invocation = per_invocation.saturating_add(n);
            }
            total = total.saturating_add(per_invocation);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_spec_sizes() {
        let a = ArraySpec {
            dims: vec![4, 2048],
            elem_size: 8,
        };
        assert_eq!(a.bytes(), 4 * 2048 * 8);
        assert_eq!(a.pages(16 * 1024), 4);
    }

    #[test]
    fn bindings_wire_bases() {
        let b = crate::matvec::spec();
        let bases: Vec<Vpn> = (0..b.arrays.len() as u64)
            .map(|i| Vpn(i * 100_000))
            .collect();
        let bind = b.bindings(&bases, 16 * 1024);
        assert_eq!(bind.arrays.len(), b.arrays.len());
        assert_eq!(bind.arrays[1].base_vpn, Vpn(100_000));
    }

    #[test]
    #[should_panic(expected = "one base per array")]
    fn bindings_require_all_bases() {
        crate::matvec::spec().bindings(&[Vpn(0)], 16 * 1024);
    }
}
