//! STENCIL — the paper's §2.4 / Figure 3 example, as a runnable workload.
//!
//! `a[i][j] = (a[i±1][j±1] …) / 9.0` over an out-of-core matrix. The nine
//! read references form one locality group; the compiler prefetches the
//! leading corner `a[i+1][j+1]` and releases the trailing corner
//! `a[i-1][j-1]` — the "second-level working set" (three rows) of the
//! paper's discussion. Not one of the paper's six evaluation benchmarks;
//! provided as a seventh workload because the paper develops its analysis
//! on exactly this code.

use std::collections::HashMap;

use compiler::expr::{Affine, Bound};
use compiler::ir::{ArrayRef, Index, LoopId, NestBuilder, SourceProgram};
use runtime::TripSpec;

use crate::spec::{ArraySpec, BenchSpec, Table2Row};

/// Matrix extent: 6144² f64 = 288 MB; one row = 48 KB = 3 pages.
pub const N: i64 = 6_144;
/// Smoothing sweeps.
pub const SWEEPS: u32 = 2;

/// Builds the STENCIL workload.
pub fn spec() -> BenchSpec {
    let mut p = SourceProgram::new("STENCIL");
    let a = p.array("a", 8, vec![Bound::Known(N), Bound::Known(N)]);
    let (i, j) = (LoopId(0), LoopId(1));
    let mut nest = NestBuilder::new("average")
        .counted_loop(Bound::Known(N))
        .counted_loop(Bound::Known(N))
        .work_ns(60);
    for di in [-1i64, 0, 1] {
        for dj in [-1i64, 0, 1] {
            nest = nest.reference(ArrayRef::read(
                a,
                vec![
                    Index::aff(Affine::var(i).plus_const(di)),
                    Index::aff(Affine::var(j).plus_const(dj)),
                ],
            ));
        }
    }
    nest = nest.reference(ArrayRef::write(
        a,
        vec![Index::aff(Affine::var(i)), Index::aff(Affine::var(j))],
    ));
    p.nest(nest.build());
    BenchSpec {
        name: "STENCIL".into(),
        source: p,
        arrays: vec![ArraySpec {
            dims: vec![N, N],
            elem_size: 8,
        }],
        trips: vec![vec![TripSpec::Static, TripSpec::Static]],
        indirect: HashMap::new(),
        invocations: SWEEPS,
        table2: Table2Row {
            description: "nearest-neighbour averaging (the paper's Figure 3 example)",
            structure: "2-D stencil; nine-reference locality group",
            analysis_difficulty: "textbook: prefetch leading corner, release trailing corner",
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compiler::{compile, CompileOptions, MachineModel};

    #[test]
    fn sizes_and_consistency() {
        let s = spec();
        let mb = s.data_set_bytes() as f64 / (1024.0 * 1024.0);
        assert!((250.0..350.0).contains(&mb), "{mb} MB");
        s.validate();
    }

    #[test]
    fn one_prefetch_one_release_for_the_group() {
        let s = spec();
        let prog = compile(
            &s.source,
            &CompileOptions::prefetch_and_release(MachineModel::origin200()),
        );
        let nest = &prog.nests[0];
        // Nine reads + the centre write share the group (same coefficients):
        // exactly one leading prefetch and one trailing release among them.
        assert_eq!(nest.prefetch_count(), 1, "one leading prefetch");
        assert_eq!(nest.release_count(), 1, "one trailing release");
        // The release is priority 0: individual refs carry no temporal
        // reuse; the group reuse is consumed within the three-row window.
        let rel = nest.directives.iter().find_map(|d| d.release).unwrap();
        assert_eq!(rel.priority, 0);
        // Leading = a[i+1][j+1] (index 8 of the reads).
        assert!(nest.directives[8].prefetch.is_some());
        // Trailing = a[i-1][j-1] (index 0).
        assert!(nest.directives[0].release.is_some());
    }
}
