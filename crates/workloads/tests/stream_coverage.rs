//! Executor coverage: each benchmark's op stream touches exactly the pages
//! its data set implies — no page skipped by fast-forwarding, no page
//! invented.

use std::collections::HashSet;

use compiler::{compile, CompileOptions, MachineModel};
use runtime::{Executor, Op, OpStream};
use vm::Vpn;
use workloads::BenchSpec;

/// Runs a benchmark's compiled op stream to completion, collecting per-array
/// distinct touched pages and total compute time.
fn drain(spec: &BenchSpec, opts: &CompileOptions) -> (Vec<HashSet<u64>>, u64, u64) {
    let prog = compile(&spec.source, opts);
    let page_size = opts.machine.page_size;
    // Space arrays far apart so pages map back to arrays unambiguously.
    let bases: Vec<Vpn> = (0..spec.arrays.len() as u64)
        .map(|i| Vpn(i * (1 << 30)))
        .collect();
    let bind = spec.bindings(&bases, page_size);
    let mut ex = Executor::new(prog, bind);
    let mut touched: Vec<HashSet<u64>> = vec![HashSet::new(); spec.arrays.len()];
    let mut compute_ns = 0u64;
    let mut ops = 0u64;
    loop {
        match ex.next_op() {
            Op::End => break,
            Op::Touch { vpn, .. } => {
                let arr = (vpn.0 >> 30) as usize;
                touched[arr].insert(vpn.0 & ((1 << 30) - 1));
            }
            Op::Compute(d) => compute_ns += d.as_nanos(),
            _ => {}
        }
        ops += 1;
        assert!(ops < 30_000_000, "runaway stream for {}", spec.name);
    }
    (touched, compute_ns, ex.iterations())
}

fn original() -> CompileOptions {
    CompileOptions::original(MachineModel::origin200())
}

#[test]
fn embar_covers_its_array_exactly() {
    let spec = workloads::benchmark("EMBAR").unwrap();
    let (touched, compute, iters) = drain(&spec, &original());
    let pages = spec.arrays[0].pages(16 * 1024);
    assert_eq!(touched[0].len() as u64, pages, "every page touched");
    // Both nests run N iterations each.
    assert_eq!(iters, 2 * workloads::embar::N as u64);
    // Compute time equals Σ trips × work.
    let expect = workloads::embar::N as u64 * (90 + 260);
    assert_eq!(compute, expect);
}

#[test]
fn matvec_covers_matrix_and_vector() {
    let spec = workloads::benchmark("MATVEC").unwrap();
    let (touched, _, iters) = drain(&spec, &original());
    assert_eq!(
        touched[0].len() as u64,
        spec.arrays[0].pages(16 * 1024),
        "matrix"
    );
    assert_eq!(
        touched[1].len() as u64,
        spec.arrays[1].pages(16 * 1024),
        "vector"
    );
    assert_eq!(touched[2].len(), 1, "y fits in one page");
    let n = workloads::matvec::COLS as u64 * workloads::matvec::ROWS as u64;
    assert_eq!(iters, n * u64::from(workloads::matvec::SWEEPS));
}

#[test]
fn stencil_covers_the_grid() {
    let spec = workloads::benchmark("STENCIL").unwrap();
    let (touched, _, iters) = drain(&spec, &original());
    assert_eq!(touched[0].len() as u64, spec.arrays[0].pages(16 * 1024));
    let n = workloads::stencil::N as u64;
    assert_eq!(iters, n * n * u64::from(workloads::stencil::SWEEPS));
}

#[test]
fn buk_scatter_hits_most_of_rank() {
    let spec = workloads::benchmark("BUK").unwrap();
    let (touched, _, _) = drain(&spec, &original());
    // key and keyout stream fully.
    assert_eq!(touched[0].len() as u64, spec.arrays[0].pages(16 * 1024));
    assert_eq!(touched[2].len() as u64, spec.arrays[2].pages(16 * 1024));
    // 2M random scatters into 4000 rank pages: expect near-full coverage
    // (coupon collector: the expected miss fraction is e^{-500} ≈ 0).
    let rank_pages = spec.arrays[1].pages(16 * 1024);
    assert!(
        touched[1].len() as u64 > rank_pages * 95 / 100,
        "rank coverage {} of {rank_pages}",
        touched[1].len()
    );
}

#[test]
fn mgrid_levels_touch_shrinking_subgrids() {
    let spec = workloads::benchmark("MGRID").unwrap();
    let (touched, _, iters) = drain(&spec, &original());
    // Total iterations: Σ_level level³ × 2 nests.
    let expect: u64 = workloads::mgrid::LEVELS
        .iter()
        .map(|&l| (l as u64).pow(3))
        .sum::<u64>()
        * 2;
    assert_eq!(iters, expect);
    // The full grids are touched at the finest level.
    for (arr, pages) in touched.iter().enumerate().take(3) {
        assert_eq!(
            pages.len() as u64,
            spec.arrays[arr].pages(16 * 1024),
            "array {arr}"
        );
    }
}

#[test]
fn hints_are_within_array_bounds_for_every_benchmark() {
    let opts = CompileOptions::prefetch_and_release(MachineModel::origin200());
    for spec in workloads::extended_benchmarks() {
        let prog = compile(&spec.source, &opts);
        let page_size = opts.machine.page_size;
        let bases: Vec<Vpn> = (0..spec.arrays.len() as u64)
            .map(|i| Vpn(i * (1 << 30)))
            .collect();
        let bind = spec.bindings(&bases, page_size);
        let limits: Vec<(u64, u64)> = spec
            .arrays
            .iter()
            .enumerate()
            .map(|(i, a)| (bases[i].0, bases[i].0 + a.pages(page_size)))
            .collect();
        let mut ex = Executor::new(prog, bind);
        let mut ops = 0u64;
        loop {
            let op = ex.next_op();
            let (vpn, n) = match op {
                Op::End => break,
                Op::PrefetchHint { vpn, npages, .. } => (vpn, npages),
                Op::ReleaseHint { vpn, .. } => (vpn, 1),
                Op::Touch { vpn, .. } => (vpn, 1),
                _ => {
                    ops += 1;
                    continue;
                }
            };
            let arr = (vpn.0 >> 30) as usize;
            let (lo, hi) = limits[arr];
            assert!(
                vpn.0 >= lo && vpn.0 + n <= hi,
                "{}: hint [{vpn}, +{n}) outside array {arr} [{lo}, {hi})",
                spec.name
            );
            ops += 1;
            assert!(ops < 30_000_000, "runaway stream for {}", spec.name);
        }
    }
}
