//! Explore the compiler pass on the paper's Figure 3 stencil.
//!
//! Builds the nearest-neighbour averaging nest from the paper's §2.4
//! example, runs reuse/group/locality analysis under different memory
//! assumptions, and prints the resulting annotated code — showing how the
//! working-set decision moves the prefetch/release points.
//!
//! ```sh
//! cargo run -p hogtame --release --example compiler_explorer
//! ```

use compiler::expr::{Affine, Bound};
use compiler::ir::{ArrayRef, Index, LoopId, NestBuilder, SourceProgram};
use compiler::pretty::render_program;
use compiler::{compile, CompileOptions, MachineModel};

/// The paper's Figure 3 source:
/// `a[i][j] = (a[i±1][j±1] … ) / 9.0`.
fn stencil(n: i64) -> SourceProgram {
    let mut p = SourceProgram::new("fig3-stencil");
    let a = p.array("a", 8, vec![Bound::Known(n), Bound::Known(n)]);
    let (i, j) = (LoopId(0), LoopId(1));
    let mut nest = NestBuilder::new("average")
        .counted_loop(Bound::Known(n))
        .counted_loop(Bound::Known(n))
        .work_ns(60);
    for di in [-1i64, 0, 1] {
        for dj in [-1i64, 0, 1] {
            nest = nest.reference(ArrayRef::read(
                a,
                vec![
                    Index::aff(Affine::var(i).plus_const(di)),
                    Index::aff(Affine::var(j).plus_const(dj)),
                ],
            ));
        }
    }
    nest = nest.reference(ArrayRef::write(
        a,
        vec![Index::aff(Affine::var(i)), Index::aff(Affine::var(j))],
    ));
    p.nest(nest.build());
    p
}

fn main() {
    // 64k × 64k doubles: each row is 512 KB = 32 pages; three rows = 96
    // pages. The matrix itself is 32 GB — hopelessly out of core.
    let n: i64 = 65_536;
    let src = stencil(n);

    println!(
        "=== source structure: {} refs form the Figure 3 group ===\n",
        10
    );

    // Case 1: plenty of memory assumed — three rows fit, so the compiler
    // keeps the second-level working set: prefetch the leading corner,
    // release the trailing corner, nothing else.
    let roomy = MachineModel {
        memory_pages: 4800,
        page_size: 16 * 1024,
        fault_latency_ns: 10_000_000,
    };
    let prog = compile(&src, &CompileOptions::prefetch_and_release(roomy));
    println!("--- assuming 75 MB available (three rows fit) ---");
    println!("{}", render_program(&prog));

    // Case 2: almost no memory assumed — even three rows will not survive,
    // so releases carry the group's temporal-reuse priority and prefetching
    // cannot be limited to first iterations.
    let tight = MachineModel {
        memory_pages: 8,
        page_size: 16 * 1024,
        fault_latency_ns: 10_000_000,
    };
    let prog = compile(&src, &CompileOptions::prefetch_and_release(tight));
    println!("--- assuming only 8 pages available (smallest working set) ---");
    println!("{}", render_program(&prog));

    println!(
        "The paper's rule: \"it is preferable to assume that only the\n\
         smallest working set will fit in memory\" — over-estimating\n\
         retention misses both prefetch and release opportunities."
    );
}
