//! Supervised crash recovery, end to end.
//!
//! Kills the releaser daemon mid-run (its first two restart attempts
//! fail, exercising the exponential backoff) and the hint layer once
//! (recovering on the first attempt), on a small machine, and walks
//! through what the run reports: the crash/detection/restart/reconcile
//! trail in the fault log, the degradation the recovery left behind, and
//! a seed-reproducibility check (the same crash plan twice is
//! bit-identical).
//!
//! ```sh
//! cargo run -p hogtame --release --example crash_matrix
//! ```

use hogtame::prelude::*;

fn run(plan: FaultPlan) -> RunOutcome {
    RunRequest::on(MachineConfig::small())
        .bench("MATVEC", Version::Release)
        .timeline(SimDuration::from_millis(50))
        .fault_plan(plan)
        .run()
        .expect("MATVEC is registered")
}

fn main() {
    let plan = FaultPlan {
        seed: 42,
        crashes: CrashFaults {
            releaser: Some(CrashSpec::at(SimTime::from_nanos(2_000_000)).with_failed_restarts(2)),
            hint_layer: Some(CrashSpec::at(SimTime::from_nanos(800_000_000))),
            ..CrashFaults::default()
        },
        ..FaultPlan::default()
    };

    let res = run(plan);
    let hog = res.hog.as_ref().unwrap();
    let log = &res.run.fault_log;

    println!(
        "MATVEC (R) with a supervised releaser + hint-layer crash, seed {}:\n",
        plan.seed
    );
    println!(
        "  completion          {:>10.3} s  (the run still finishes)",
        hog.finish_time.as_secs_f64()
    );
    println!(
        "  crashes             {:>10}",
        log.count("component_crashed")
    );
    println!("  detections          {:>10}", log.count("crash_detected"));
    println!("  failed restarts     {:>10}", log.count("restart_failed"));
    println!(
        "  restarts            {:>10}",
        log.count("component_restarted")
    );
    println!(
        "  reconciliations     {:>10}",
        log.count("state_reconciled")
    );

    println!("\nRecovery trail:");
    for ev in log.events() {
        println!("  {:>12} ns  {}", ev.at.as_nanos(), ev.kind.name());
    }

    println!("\nMerged fault log: {}", log.summary());
    let marks = res.run.timeline.as_ref().map_or(0, |t| t.marks.len());
    println!("Timeline marks (crash/restart transitions): {marks}");

    // Determinism: the same crash plan is a pure function of the seed.
    let again = run(plan);
    assert_eq!(
        hog.finish_time.as_nanos(),
        again.hog.as_ref().unwrap().finish_time.as_nanos(),
        "crashed run must be bit-identical across executions"
    );
    assert_eq!(
        res.run.fault_log.summary(),
        again.run.fault_log.summary(),
        "fault log must be bit-identical across executions"
    );
    assert!(
        log.count("component_restarted") >= 2,
        "both components must come back"
    );
    println!("\nSeed reproducibility: PASS (identical finish time and fault log)");
}
