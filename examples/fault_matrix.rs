//! Fault injection and graceful degradation, end to end.
//!
//! Arms every fault class at once — hint poisoning, daemon jitter, a
//! mid-run memory-limit shrink, flaky swap I/O — on a small machine, with
//! the hint health monitor enabled, and walks through what the run
//! reports: the merged fault log, the degradation counters, and the
//! timeline marks. Finishes with a seed-reproducibility check (the same
//! plan twice is bit-identical).
//!
//! ```sh
//! cargo run -p hogtame --release --example fault_matrix
//! ```

use hogtame::prelude::*;

fn run(plan: FaultPlan) -> RunOutcome {
    RunRequest::on(MachineConfig::small())
        .bench("MATVEC", Version::Release)
        .rt_config(runtime::RtConfig {
            health: Some(HealthConfig::default()),
            ..runtime::RtConfig::default()
        })
        .timeline(SimDuration::from_millis(50))
        .fault_plan(plan)
        .run()
        .expect("MATVEC is registered")
}

fn main() {
    let plan = FaultPlan {
        seed: 42,
        hints: HintFaults::poisoned(0.4),
        daemons: DaemonFaults {
            releaser_jitter: SimDuration::from_micros(500),
            releaser_stall: 0.05,
            pagingd_skew: SimDuration::from_micros(200),
            shrink_limit_at: Some(SimTime::from_nanos(500_000_000)),
            shrink_to_frac: 0.8,
        },
        io: IoFaults::flaky(0.02),
        ..FaultPlan::default()
    };

    let res = run(plan);
    let hog = res.hog.as_ref().unwrap();
    let rt = hog.rt_stats.unwrap();

    println!(
        "MATVEC (R) under a fully armed fault plan, seed {}:\n",
        plan.seed
    );
    println!(
        "  completion          {:>10.3} s  (the run still finishes)",
        hog.finish_time.as_secs_f64()
    );
    println!("  hints dropped       {:>10}", rt.hints_dropped);
    println!("  hints delayed       {:>10}", rt.hints_delayed);
    println!("  hints duplicated    {:>10}", rt.hints_duplicated);
    println!("  hints mistagged     {:>10}", rt.hints_mistagged);
    println!("  stale bitmap reads  {:>10}", rt.stale_reads);
    println!("  health suppressed   {:>10}", rt.hints_suppressed);
    println!(
        "  misfires            {:>10}  (cancelled {} / rescued {} / useless prefetch {})",
        rt.misfires_cancelled + rt.misfires_rescued + rt.misfires_useless_prefetch,
        rt.misfires_cancelled,
        rt.misfires_rescued,
        rt.misfires_useless_prefetch
    );

    println!("\nMerged fault log: {}", res.run.fault_log.summary());

    let marks = res.run.timeline.as_ref().map_or(0, |t| t.marks.len());
    println!("Timeline marks (transitions + limit shrink): {marks}");

    // Determinism: the same plan is a pure function of the seed.
    let again = run(plan);
    assert_eq!(
        hog.finish_time.as_nanos(),
        again.hog.as_ref().unwrap().finish_time.as_nanos(),
        "faulted run must be bit-identical across executions"
    );
    assert_eq!(
        res.run.fault_log.summary(),
        again.run.fault_log.summary(),
        "fault log must be bit-identical across executions"
    );
    assert!(
        res.run.fault_log.total() > 0,
        "the plan must actually inject faults"
    );
    println!("\nSeed reproducibility: PASS (identical finish time and fault log)");
}
