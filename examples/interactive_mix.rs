//! The multiprogramming mix of the paper's evaluation, in miniature.
//!
//! For every out-of-core benchmark, runs all four build versions
//! (original / prefetch / aggressive release / buffered release) alongside
//! the interactive task and prints a compact who-wins matrix: hog speed vs
//! interactive responsiveness.
//!
//! ```sh
//! cargo run -p hogtame --release --example interactive_mix [BENCH ...]
//! ```

use hogtame::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<String> = if args.is_empty() {
        vec!["MATVEC".into(), "BUK".into()]
    } else {
        args
    };

    println!(
        "{:<8} {:<3} {:>12} {:>12} {:>16} {:>14}",
        "bench", "ver", "hog total(s)", "vs original", "interactive(ms)", "faults/sweep"
    );
    println!("{}", "-".repeat(72));

    for name in &names {
        // All four versions of one benchmark are independent runs: expand
        // them into a request grid and drain it through the executor.
        let grid: Vec<RunRequest> = Version::ALL
            .iter()
            .map(|&version| {
                RunRequest::on(MachineConfig::origin200())
                    .bench(name.clone(), version)
                    .interactive(SimDuration::from_secs(5), None)
            })
            .collect();
        let outcomes = exec::run_all(grid);
        if outcomes.iter().any(|o| o.is_err()) {
            eprintln!("unknown benchmark {name}; choose from EMBAR MATVEC BUK CGM MGRID FFTPDE");
            continue;
        }
        let mut base_total = None;
        for (version, outcome) in Version::ALL.into_iter().zip(outcomes) {
            let result = outcome.expect("checked above");
            let hog = result.hog.unwrap();
            let int = result.interactive.unwrap();
            let total = hog.breakdown.total().as_secs_f64();
            if version == Version::Original {
                base_total = Some(total);
            }
            println!(
                "{:<8} {:<3} {:>12.2} {:>12} {:>16.2} {:>14.1}",
                name,
                version.label(),
                total,
                base_total
                    .map(|b| format!("{:.3}", total / b))
                    .unwrap_or_else(|| "-".into()),
                int.mean_response()
                    .map(|d| d.as_millis_f64())
                    .unwrap_or(f64::NAN),
                int.mean_sweep_faults().unwrap_or(f64::NAN),
            );
        }
        println!();
    }
    println!(
        "Reading the matrix: P makes the hog faster but ruins the\n\
         interactive column; R and B keep the hog fast AND restore the\n\
         interactive task to its stand-alone millisecond."
    );
}
