//! Watch the machine's memory over time.
//!
//! Samples occupancy during a MATVEC + interactive run and renders ASCII
//! area charts for two versions — making the paper's story visible: under
//! prefetch-only the free pool collapses and the daemon's sawtooth appears;
//! with buffered releasing the pool stays healthy and the vector's 3 200
//! pages sit resident.
//!
//! ```sh
//! cargo run -p hogtame --release --example memory_timeline
//! ```

use hogtame::prelude::*;

fn chart(version: Version) {
    let result = RunRequest::on(MachineConfig::origin200())
        .bench("MATVEC", version)
        .interactive(SimDuration::from_secs(5), None)
        .timeline(SimDuration::from_millis(250))
        .run()
        .expect("MATVEC is registered");
    let tl = result.run.timeline.expect("timeline enabled");
    println!("=== MATVEC-{} ===", version.label());
    println!("{}", tl.render_ascii(100));
    println!(
        "min free: {} frames | hog peak RSS: {} frames\n",
        tl.min_free(),
        tl.max_rss(0)
    );
}

fn main() {
    chart(Version::Prefetch);
    chart(Version::Buffered);
    println!(
        "Under P the free row pins to 0-1 tenths (the daemon scrambles to\n\
         keep up); under B the hog's RSS plateaus at the retained vector\n\
         plus a streaming window, and free memory never collapses."
    );
}
