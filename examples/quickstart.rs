//! Quickstart: tame one memory hog.
//!
//! Runs the out-of-core MATVEC kernel — compiled with automatic prefetch
//! and release insertion — alongside the interactive task on the simulated
//! 75 MB Origin 200, and prints what each process experienced.
//!
//! ```sh
//! cargo run -p hogtame --release --example quickstart
//! ```

use hogtame::prelude::*;

fn main() {
    let machine = MachineConfig::origin200();
    println!(
        "machine: {:.0} MB user memory, {} KB pages, {}-disk swap stripe\n",
        machine.memory_mb(),
        machine.page_size / 1024,
        machine.swap.disks
    );

    // MATVEC compiled with prefetching + release buffering (the paper's
    // best version), sharing the machine with an interactive task that
    // sleeps five seconds between 1 MB sweeps.
    let result = RunRequest::on(machine)
        .bench("MATVEC", Version::Buffered)
        .interactive(SimDuration::from_secs(5), None)
        .run()
        .expect("MATVEC is registered");

    let hog = result.hog.expect("benchmark ran");
    println!("out-of-core MATVEC (prefetch + buffered release):");
    println!(
        "  finished at        {:>10.2} s",
        hog.finish_time.as_secs_f64()
    );
    for cat in TimeCategory::ALL {
        println!(
            "  {:<18} {:>10.2} s",
            cat.label(),
            hog.breakdown.get(cat).as_secs_f64()
        );
    }
    let rt = hog.rt_stats.expect("run-time layer active");
    println!(
        "  prefetches issued  {:>10}   releases issued {:>6} (+{} buffered drains)",
        rt.prefetch_issued, rt.release_issued_direct, rt.release_drained
    );

    let int = result.interactive.expect("interactive ran");
    println!("\ninteractive task (1 MB sweep every 5 s):");
    println!(
        "  mean response      {:>10.3} ms over {} sweeps",
        int.mean_response()
            .map(|d| d.as_millis_f64())
            .unwrap_or(f64::NAN),
        int.sweeps.len()
    );
    println!(
        "  hard faults/sweep  {:>10.1}",
        int.mean_sweep_faults().unwrap_or(f64::NAN)
    );

    let vm = &result.run.vm_stats;
    println!("\nkernel activity:");
    println!(
        "  paging daemon: {} activations, {} pages stolen",
        vm.pagingd.activations, vm.pagingd.pages_stolen
    );
    println!(
        "  releaser:      {} activations, {} pages released",
        vm.releaser.activations, vm.releaser.pages_released
    );
    println!(
        "\nEveryone wins: the hog streams at disk speed and the interactive\n\
         task never notices it. Try Version::Prefetch above to see the\n\
         memory hog untamed."
    );
}
