//! Aggressive vs buffered releasing on MATVEC — the paper's §4.3 story.
//!
//! Under aggressive releasing, the compiler's hints throw away the 52 MB
//! vector every row, and the application fights the releaser to get it
//! back. The buffered layer holds the vector's priority-1 releases in
//! queues and only drains them under real memory pressure, so the vector
//! stays resident and only the streaming matrix is given back.
//!
//! ```sh
//! cargo run -p hogtame --release --example release_policies
//! ```

use hogtame::prelude::*;

fn run(version: Version) -> (hogtame::ProcResult, vm::VmStats) {
    let res = RunRequest::on(MachineConfig::origin200())
        .bench("MATVEC", version)
        .interactive(SimDuration::from_secs(5), None)
        .run()
        .expect("MATVEC is registered");
    (res.hog.unwrap(), res.run.vm_stats)
}

fn main() {
    println!("MATVEC with the two release policies (paper §4.3):\n");
    for version in [Version::Release, Version::Buffered] {
        let (hog, vm) = run(version);
        let rt = hog.rt_stats.unwrap();
        let label = match version {
            Version::Release => "aggressive (R)",
            Version::Buffered => "buffered  (B)",
            _ => unreachable!(),
        };
        println!("{label}:");
        println!(
            "  completion            {:>9.2} s",
            hog.finish_time.as_secs_f64()
        );
        println!("  releases issued       {:>9}", vm.releaser.pages_released);
        println!("  released then rescued {:>9}", vm.freed.rescued_release);
        println!(
            "  releases buffered     {:>9}   drained under pressure {:>8}",
            rt.release_buffered, rt.release_drained
        );
        println!("  prefetch I/O issued   {:>9} pages\n", rt.prefetch_issued);
    }
    println!(
        "The buffered layer issues roughly half the releases and half the\n\
         prefetch I/O: the vector's priority-1 releases sit in the queues\n\
         and the vector never leaves memory, while the matrix's priority-0\n\
         releases flow straight to the OS."
    );
}
