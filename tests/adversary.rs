//! Adversary isolation, end to end.
//!
//! Three properties, each load-bearing for DESIGN.md §15:
//!
//! 1. **Isolation** — with per-tenant quotas and hint admission control
//!    on, no adversary strategy degrades a well-behaved interactive
//!    tenant's mean response beyond a bounded factor of the
//!    no-adversary baseline.
//! 2. **Sensitivity** — the bound is not vacuous: without the defenses
//!    the same attack visibly blows it.
//! 3. **Determinism & cleanliness** — adversarial runs are seeded and
//!    bit-reproducible, and checked mode (sanitizer + oracle) stays
//!    clean under every strategy.

mod common;

use hogtame::prelude::*;

const ADVERSARIES: u32 = 3;
const ADV_PAGES: u64 = 300;
/// Long think time so the victim's pages age while it sleeps — the
/// paper's Figure 10 interactive scenario, and the window an adversary
/// needs to do damage.
const SLEEP: SimDuration = SimDuration::from_millis(250);
const SWEEPS: u32 = 18;
const BOUND: f64 = 1.10;

fn quotas() -> Vec<TenantQuota> {
    vec![
        TenantQuota::new(80, 16),
        TenantQuota::new(128, 32),
        TenantQuota::new(128, 32),
        TenantQuota::new(128, 32),
    ]
}

fn defended(strategy: Option<AdversaryStrategy>) -> RunRequest {
    let mut req = RunRequest::on(MachineConfig::small())
        .interactive(SLEEP, Some(SWEEPS))
        .tenants(quotas())
        .rt_config(runtime::RtConfig {
            health: Some(HealthConfig::default()),
            admission: Some(AdmissionConfig::default()),
            ..runtime::RtConfig::default()
        });
    if let Some(s) = strategy {
        let mut plan = AdversaryPlan::new(s, ADVERSARIES, 1);
        plan.pages = ADV_PAGES;
        req = req.adversary(plan);
    }
    req
}

fn victim_response(res: &hogtame::RunOutcome) -> f64 {
    res.interactive
        .as_ref()
        .expect("interactive tenant ran")
        .mean_response()
        .expect("victim completed sweeps")
        .as_secs_f64()
}

/// With the defenses on, every strategy is contained: the victim's mean
/// response stays within `BOUND` of the no-adversary baseline, and the
/// adversaries really ran (they are not contained by being absent).
#[test]
fn defended_victim_is_isolated_under_every_strategy() {
    let baseline = victim_response(&defended(None).run().expect("baseline runs"));
    for s in AdversaryStrategy::ALL {
        let res = defended(Some(s)).run().expect("adversary run is valid");
        let adversaries: Vec<_> = res
            .run
            .procs
            .iter()
            .filter(|p| p.name.starts_with("adversary"))
            .collect();
        assert_eq!(adversaries.len(), ADVERSARIES as usize, "{}", s.name());
        assert!(
            adversaries.iter().all(|p| p.ops_executed > 0),
            "{}: adversaries must actually run",
            s.name()
        );
        let norm = victim_response(&res) / baseline;
        assert!(
            norm <= BOUND,
            "{}: defended victim degraded {norm:.3}x (bound {BOUND})",
            s.name()
        );
    }
}

/// The isolation bound is not vacuous: the same attack without the
/// defenses blows it wide open.
#[test]
fn undefended_prefetch_storm_blows_the_bound() {
    let mk = |strategy: Option<AdversaryStrategy>| {
        let mut req = RunRequest::on(MachineConfig::small())
            .interactive(SimDuration::from_millis(100), Some(8));
        if let Some(s) = strategy {
            let mut plan = AdversaryPlan::new(s, ADVERSARIES, 1);
            plan.pages = ADV_PAGES;
            req = req.adversary(plan);
        }
        req
    };
    let baseline = victim_response(&mk(None).run().expect("baseline runs"));
    let attacked = victim_response(
        &mk(Some(AdversaryStrategy::FalsePrefetchStorm))
            .run()
            .expect("attack runs"),
    );
    assert!(
        attacked / baseline > BOUND,
        "undefended storm only reached {:.3}x — the isolation tests prove nothing",
        attacked / baseline
    );
}

/// Adversarial runs are seeded: the same request twice is bit-identical,
/// down to the fault log and per-sweep response times.
#[test]
fn adversary_runs_are_bit_reproducible() {
    let run = || {
        defended(Some(AdversaryStrategy::FalsePrefetchStorm))
            .run()
            .expect("adversary run is valid")
    };
    let (a, b) = (run(), run());
    assert_eq!(common::outcome_digest(&a), common::outcome_digest(&b));
    assert_eq!(a.run.fault_log.total(), b.run.fault_log.total());
    assert_eq!(
        a.run.vm_stats.pagingd.quota_protected.get(),
        b.run.vm_stats.pagingd.quota_protected.get()
    );
}

/// Checked mode stays clean under every adversary: quota conservation,
/// free-list accounting, and the lockstep oracle all hold while the
/// defenses deflect the attack. (A violation panics the run.)
#[test]
fn checked_mode_is_clean_under_every_adversary() {
    for s in AdversaryStrategy::ALL {
        let mut plan = AdversaryPlan::new(s, ADVERSARIES, 1);
        plan.pages = ADV_PAGES;
        let res = RunRequest::on(MachineConfig::small())
            .interactive(SLEEP, Some(6))
            .tenants(quotas())
            .rt_config(runtime::RtConfig {
                health: Some(HealthConfig::default()),
                admission: Some(AdmissionConfig::default()),
                ..runtime::RtConfig::default()
            })
            .adversary(plan)
            .checked()
            .run()
            .unwrap_or_else(|e| panic!("{}: checked adversary run failed: {e}", s.name()));
        assert!(res.interactive.is_some(), "{}", s.name());
    }
}
