//! Checked mode, end to end.
//!
//! Three properties, each load-bearing for DESIGN.md §14:
//!
//! 1. **Transparency** — a checked run is bit-identical in simulated
//!    outcome to its unchecked twin. The sanitizer and oracle observe;
//!    they never perturb.
//! 2. **Sensitivity** — every deliberate corruption in `Mutation::all()`
//!    is caught, and caught by the *intended* invariant, proving each
//!    probe is live rather than merely present.
//! 3. **Specificity** — without a mutation no probe fires, including
//!    under a fault plan that stresses every degradation path.

mod common;

use std::panic::{catch_unwind, AssertUnwindSafe};

use hogtame::prelude::*;

/// Injection time for mutated runs: the hog is deep in steady state.
const MUTATE_AT: SimTime = SimTime::from_nanos(50_000_000);

/// The smallest scenario that exercises each mutation's subsystem (the
/// priority buffers need buffered releasing; the clock hand only moves
/// when nothing releases memory and the paging daemon must reclaim).
fn scenario(m: Mutation) -> (&'static str, Version) {
    match m {
        Mutation::ReorderReleaseQueue => ("MATVEC", Version::Buffered),
        Mutation::WarpClockHand => ("MATVEC", Version::Original),
        _ => ("MATVEC", Version::Release),
    }
}

/// Runs the mutated scenario under checked mode and returns the violation
/// the sanitizer raises.
fn violation_of(m: Mutation) -> InvariantViolation {
    let (bench, version) = scenario(m);
    let req = common::small_request(bench, version)
        .checked()
        .mutate(MUTATE_AT, m);
    let payload = catch_unwind(AssertUnwindSafe(move || req.run()))
        .expect_err(&format!("{}: mutated run must not complete", m.label()));
    *payload
        .downcast::<InvariantViolation>()
        .unwrap_or_else(|_| panic!("{}: non-violation panic payload", m.label()))
}

#[test]
fn checked_runs_are_bit_identical_to_unchecked() {
    for (bench, version) in [("MATVEC", Version::Release), ("MATVEC", Version::Buffered)] {
        let plain = common::run_cell_small(bench, version);
        let checked = common::small_request(bench, version)
            .checked()
            .run()
            .expect("benchmark is registered");
        assert_eq!(
            common::outcome_digest(&plain),
            common::outcome_digest(&checked),
            "{bench}-{}: checked mode must not perturb the simulation",
            version.label()
        );
    }
}

#[test]
fn every_mutation_is_caught_by_its_intended_invariant() {
    for m in Mutation::all() {
        let v = violation_of(m);
        assert_eq!(
            v.invariant,
            m.expected_invariant(),
            "{}: wrong invariant fired ({})",
            m.label(),
            v.detail
        );
    }
}

#[test]
fn violations_carry_diagnostic_context() {
    let v = violation_of(Mutation::LeakFrame);
    assert_eq!(v.subsystem, "vm");
    assert!(
        v.at >= MUTATE_AT,
        "violation precedes its own cause: {:?}",
        v.at
    );
    assert!(!v.detail.is_empty(), "detail must explain the mismatch");
    assert!(
        !v.tail.is_empty(),
        "the flight-recorder tail must ride along for triage"
    );
    let shown = v.to_string();
    assert!(
        shown.contains("frame_conservation") && shown.contains("vm"),
        "Display must name the invariant and subsystem: {shown}"
    );
}

#[test]
fn mutation_targets_route_to_their_subsystem() {
    assert_eq!(
        violation_of(Mutation::FilterPassthrough).subsystem,
        "runtime"
    );
    assert_eq!(violation_of(Mutation::DoubleCompleteIo).subsystem, "disk");
}

#[test]
fn faulted_checked_runs_stay_clean() {
    // Seeded fault injection stresses hint poisoning, daemon jitter and
    // flaky I/O at once; none of it is a *consistency* violation, so
    // checked mode must stay silent and the run must match its unchecked
    // twin bit for bit.
    let plan = FaultPlan {
        seed: 7,
        hints: HintFaults::poisoned(0.3),
        daemons: DaemonFaults {
            releaser_jitter: SimDuration::from_micros(200),
            releaser_stall: 0.1,
            pagingd_skew: SimDuration::from_micros(100),
            ..DaemonFaults::default()
        },
        io: IoFaults::flaky(0.05),
        ..FaultPlan::default()
    };
    let run = |checked: bool| {
        let mut req = common::small_request("MATVEC", Version::Buffered).fault_plan(plan);
        if checked {
            req = req.checked();
        }
        req.run().expect("benchmark is registered")
    };
    let plain = run(false);
    let checked = run(true);
    assert!(
        plain.run.fault_log.total() > 0,
        "the plan must inject faults"
    );
    assert_eq!(
        common::outcome_digest(&plain),
        common::outcome_digest(&checked)
    );
}

#[test]
fn interactive_alone_runs_clean_under_checked() {
    let res = RunRequest::on(MachineConfig::small())
        .interactive(SimDuration::from_secs(5), Some(12))
        .checked()
        .run()
        .expect("interactive task installed");
    assert!(res.interactive.unwrap().mean_response().is_some());
}
