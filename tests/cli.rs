//! End-to-end tests for the `hogtame` CLI's `trace` and `stats`
//! subcommands: exit codes on missing or malformed input, validity of the
//! exported JSON artifacts, and byte-stable stats output across runs.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn hogtame(args: &[&str], results: &std::path::Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hogtame"))
        .args(args)
        .env("HOGTAME_RESULTS", results)
        .output()
        .expect("hogtame binary spawns")
}

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hogtame-cli-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

/// A minimal JSON syntax checker (the workspace builds offline, with no
/// serde): accepts exactly the RFC 8259 grammar, rejects trailing garbage.
mod json {
    pub fn validate(s: &str) -> Result<(), String> {
        let b = s.as_bytes();
        let i = value(b, ws(b, 0))?;
        match ws(b, i) {
            j if j == b.len() => Ok(()),
            j => Err(format!("trailing garbage at byte {j}")),
        }
    }

    fn ws(b: &[u8], mut i: usize) -> usize {
        while i < b.len() && matches!(b[i], b' ' | b'\t' | b'\n' | b'\r') {
            i += 1;
        }
        i
    }

    fn value(b: &[u8], i: usize) -> Result<usize, String> {
        match b.get(i) {
            Some(b'{') => composite(b, i, b'}', true),
            Some(b'[') => composite(b, i, b']', false),
            Some(b'"') => string(b, i),
            Some(b't') => literal(b, i, b"true"),
            Some(b'f') => literal(b, i, b"false"),
            Some(b'n') => literal(b, i, b"null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
            _ => Err(format!("expected a value at byte {i}")),
        }
    }

    fn composite(b: &[u8], i: usize, close: u8, keyed: bool) -> Result<usize, String> {
        let mut i = ws(b, i + 1);
        if b.get(i) == Some(&close) {
            return Ok(i + 1);
        }
        loop {
            if keyed {
                i = ws(b, string(b, ws(b, i))?);
                if b.get(i) != Some(&b':') {
                    return Err(format!("expected ':' at byte {i}"));
                }
                i += 1;
            }
            i = ws(b, value(b, ws(b, i))?);
            match b.get(i) {
                Some(b',') => i += 1,
                Some(c) if *c == close => return Ok(i + 1),
                _ => return Err(format!("expected ',' or close at byte {i}")),
            }
        }
    }

    fn string(b: &[u8], i: usize) -> Result<usize, String> {
        if b.get(i) != Some(&b'"') {
            return Err(format!("expected '\"' at byte {i}"));
        }
        let mut i = i + 1;
        while let Some(&c) = b.get(i) {
            match c {
                b'"' => return Ok(i + 1),
                b'\\' => match b.get(i + 1) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => i += 2,
                    Some(b'u')
                        if b.len() > i + 5 && b[i + 2..i + 6].iter().all(u8::is_ascii_hexdigit) =>
                    {
                        i += 6;
                    }
                    _ => return Err(format!("bad escape at byte {i}")),
                },
                0x00..=0x1F => return Err(format!("raw control char at byte {i}")),
                _ => i += 1,
            }
        }
        Err("unterminated string".into())
    }

    fn literal(b: &[u8], i: usize, lit: &[u8]) -> Result<usize, String> {
        if b.len() >= i + lit.len() && &b[i..i + lit.len()] == lit {
            Ok(i + lit.len())
        } else {
            Err(format!("bad literal at byte {i}"))
        }
    }

    fn number(b: &[u8], mut i: usize) -> Result<usize, String> {
        let start = i;
        if b.get(i) == Some(&b'-') {
            i += 1;
        }
        let digits = |b: &[u8], mut i: usize| {
            let s = i;
            while i < b.len() && b[i].is_ascii_digit() {
                i += 1;
            }
            (i, i > s)
        };
        let (j, ok) = digits(b, i);
        if !ok {
            return Err(format!("bad number at byte {start}"));
        }
        i = j;
        if b.get(i) == Some(&b'.') {
            let (j, ok) = digits(b, i + 1);
            if !ok {
                return Err(format!("bad fraction at byte {i}"));
            }
            i = j;
        }
        if matches!(b.get(i), Some(b'e' | b'E')) {
            i += 1;
            if matches!(b.get(i), Some(b'+' | b'-')) {
                i += 1;
            }
            let (j, ok) = digits(b, i);
            if !ok {
                return Err(format!("bad exponent at byte {i}"));
            }
            i = j;
        }
        Ok(i)
    }
}

#[test]
fn missing_and_malformed_input_exits_2() {
    let dir = scratch("badargs");
    let cases: &[&[&str]] = &[
        &[],                                  // no subcommand
        &["frobnicate"],                      // unknown subcommand
        &["trace"],                           // missing benchmark
        &["stats"],                           // missing benchmark
        &["trace", "MATVEC", "--sleep"],      // flag missing its value
        &["stats", "MATVEC", "--sleep", "x"], // unparseable value
        &["trace", "MATVEC", "--bogus"],      // unknown flag
    ];
    for args in cases {
        let out = hogtame(args, &dir);
        assert_eq!(
            out.status.code(),
            Some(2),
            "hogtame {args:?} must exit 2, got {:?}",
            out.status
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("usage:"), "hogtame {args:?} stderr: {err}");
    }

    // Unknown benchmarks and versions get targeted messages, same code.
    let out = hogtame(&["trace", "NOSUCH"], &dir);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown benchmark"));
    let out = hogtame(&["stats", "MATVEC", "Z"], &dir);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown version"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn trace_exports_valid_json_artifacts() {
    let dir = scratch("trace");
    let out = hogtame(&["trace", "MATVEC", "R"], &dir);
    assert!(
        out.status.success(),
        "trace failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let chrome = fs::read_to_string(dir.join("trace_matvec_r.trace.json"))
        .expect("Chrome trace artifact written");
    json::validate(&chrome).expect("Chrome trace must be valid JSON");

    let jsonl =
        fs::read_to_string(dir.join("trace_matvec_r.jsonl")).expect("JSONL artifact written");
    let lines: Vec<&str> = jsonl.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(!lines.is_empty(), "event stream must not be empty");
    for (n, line) in lines.iter().enumerate() {
        json::validate(line).unwrap_or_else(|e| panic!("jsonl line {}: {e}", n + 1));
        assert!(
            line.starts_with('{'),
            "each JSONL line is one object: {line}"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stats_output_is_stable_across_runs() {
    let (da, db) = (scratch("stats-a"), scratch("stats-b"));
    let a = hogtame(&["stats", "MATVEC", "R"], &da);
    let b = hogtame(&["stats", "MATVEC", "R"], &db);
    assert!(a.status.success() && b.status.success());
    assert_eq!(
        a.stdout, b.stdout,
        "stats must be byte-stable run to run (deterministic simulation)"
    );
    let stdout = String::from_utf8_lossy(&a.stdout);
    assert!(
        stdout.contains("hint-outcome attribution"),
        "stats prints the outcome table: {stdout}"
    );

    // The Prometheus export is persisted and identical too.
    let prom_a = fs::read(da.join("stats_matvec_r.prom")).expect(".prom artifact");
    let prom_b = fs::read(db.join("stats_matvec_r.prom")).expect(".prom artifact");
    assert_eq!(prom_a, prom_b);
    assert!(
        String::from_utf8_lossy(&prom_a).contains("# TYPE"),
        "Prometheus exposition format"
    );
    let _ = fs::remove_dir_all(&da);
    let _ = fs::remove_dir_all(&db);
}

#[test]
fn fleet_renders_tails_and_overload_record() {
    let dir = scratch("fleet");
    // `--calm` drops the storm: the run exercises the whole fleet path
    // (arrivals, pressure sampling, per-tenant tails) in seconds.
    let out = hogtame(&["fleet", "--calm"], &dir);
    assert!(
        out.status.success(),
        "fleet failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "(all)",
        "fairness (Jain over per-tenant means):",
        "tenants shed:",
        "brownout transitions:",
        "time at level:",
    ] {
        assert!(stdout.contains(needle), "missing {needle:?} in: {stdout}");
    }
    let prom = fs::read_to_string(dir.join("fleet_calm.prom")).expect(".prom artifact");
    assert!(prom.contains("# TYPE"), "Prometheus exposition format");
    assert!(
        fs::read_to_string(dir.join("fleet_calm.txt"))
            .expect(".txt artifact")
            .contains("tenant"),
        "tail table persisted"
    );

    // Bad flags exit 2 with usage, like every other subcommand.
    let bad = hogtame(&["fleet", "--bogus"], &dir);
    assert_eq!(bad.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad.stderr).contains("usage:"));
    let _ = fs::remove_dir_all(&dir);
}

// The JSON checker itself is load-bearing for the assertions above; pin
// its judgement on both sides.
#[test]
fn json_validator_accepts_and_rejects() {
    for ok in [
        "{}",
        "[]",
        r#"{"a": [1, -2.5e3, true, null, "x\né"]}"#,
        "  [ {\"k\":\"v\"} , 0 ]  ",
    ] {
        json::validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
    }
    for bad in [
        "",
        "{",
        "[1,]",
        "{\"a\" 1}",
        "\"unterminated",
        "01x",
        "[1] trailing",
        "{\"a\":\u{1}\"ctl\"}",
    ] {
        assert!(json::validate(bad).is_err(), "{bad:?} must be rejected");
    }
}
