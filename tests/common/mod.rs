//! Helpers shared by the integration-test suites.
//!
//! Each `[[test]]` target compiles this module independently, so any one
//! suite uses only a subset of the helpers.
#![allow(dead_code)]

use hogtame::prelude::*;

/// Runs `bench` in `version` on the paper's Origin 200 machine with the
/// interactive task alongside — the standard experiment cell.
pub fn run_cell(bench: &str, version: Version) -> hogtame::RunOutcome {
    RunRequest::on(MachineConfig::origin200())
        .bench(bench, version)
        .interactive(SimDuration::from_secs(5), None)
        .run()
        .expect("benchmark is registered")
}

/// The same cell on the scaled-down small machine, as a request so callers
/// can stack more knobs (checked mode, fault plans) before running.
pub fn small_request(bench: &str, version: Version) -> RunRequest {
    RunRequest::on(MachineConfig::small())
        .bench(bench, version)
        .interactive(SimDuration::from_secs(5), None)
}

/// Runs the small-machine cell directly.
pub fn run_cell_small(bench: &str, version: Version) -> hogtame::RunOutcome {
    small_request(bench, version)
        .run()
        .expect("benchmark is registered")
}

/// Total hog wall-clock in seconds.
pub fn hog_total(res: &hogtame::RunOutcome) -> f64 {
    res.hog.as_ref().unwrap().breakdown.total().as_secs_f64()
}

/// Mean interactive response in seconds.
pub fn int_resp(res: &hogtame::RunOutcome) -> f64 {
    res.interactive
        .as_ref()
        .unwrap()
        .mean_response()
        .unwrap()
        .as_secs_f64()
}

/// Digest of everything the *simulation* determines about a run — the
/// fields that must be bit-identical between runs that differ only in
/// observability or checking.
pub fn outcome_digest(
    res: &hogtame::RunOutcome,
) -> (u64, u64, u64, u64, u64, u64, Option<Vec<u64>>) {
    (
        res.hog.as_ref().map_or(0, |h| h.finish_time.as_nanos()),
        res.run.swap_reads,
        res.run.swap_writes,
        res.run.vm_stats.releaser.pages_released.get(),
        res.run.final_free,
        res.run.end_time.as_nanos(),
        res.interactive
            .as_ref()
            .map(|i| i.sweeps.iter().map(|d| d.as_nanos()).collect()),
    )
}
