//! Determinism: the whole simulation is a pure function of its inputs.
//!
//! EXPERIMENTS.md promises bit-exact regeneration of every figure; these
//! tests enforce it.

mod common;

use hogtame::prelude::*;
use sim_core::stats::TimeCategory;

fn run_once(bench: &str, version: Version) -> (u64, u64, u64, u64, Vec<u64>) {
    let res = common::run_cell(bench, version);
    let hog = res.hog.unwrap();
    let int = res.interactive.unwrap();
    (
        hog.finish_time.as_nanos(),
        hog.breakdown.total().as_nanos(),
        res.run.swap_reads,
        res.run.vm_stats.pagingd.pages_stolen.get(),
        int.sweeps.iter().map(|d| d.as_nanos()).collect(),
    )
}

#[test]
fn identical_runs_are_bit_identical() {
    for (bench, version) in [
        ("MATVEC", Version::Prefetch),
        ("MATVEC", Version::Buffered),
        ("BUK", Version::Release),
    ] {
        let a = run_once(bench, version);
        let b = run_once(bench, version);
        assert_eq!(a, b, "{bench}-{} diverged between runs", version.label());
    }
}

#[test]
fn breakdown_categories_are_reproducible() {
    let get = || {
        let res = RunRequest::on(MachineConfig::origin200())
            .bench("CGM", Version::Release)
            .run()
            .expect("CGM is registered");
        let b = res.hog.unwrap().breakdown;
        TimeCategory::ALL.map(|c| b.get(c).as_nanos())
    };
    assert_eq!(get(), get());
}

#[test]
fn faulted_runs_are_bit_identical() {
    // A run with every fault class armed is still a pure function of the
    // seed: same plan, same metrics, same fault log, byte for byte.
    let plan = FaultPlan {
        seed: 7,
        hints: HintFaults::poisoned(0.3),
        daemons: DaemonFaults {
            releaser_jitter: SimDuration::from_micros(200),
            releaser_stall: 0.1,
            pagingd_skew: SimDuration::from_micros(100),
            shrink_limit_at: Some(SimTime::from_nanos(2_000_000_000)),
            shrink_to_frac: 0.75,
        },
        io: IoFaults::flaky(0.05),
        ..FaultPlan::default()
    };
    let run = || {
        let res = RunRequest::on(MachineConfig::origin200())
            .bench("MATVEC", Version::Buffered)
            .interactive(SimDuration::from_secs(5), None)
            .fault_plan(plan)
            .run()
            .expect("MATVEC is registered");
        let hog = res.hog.unwrap();
        let int = res.interactive.unwrap();
        (
            hog.finish_time.as_nanos(),
            hog.breakdown.total().as_nanos(),
            res.run.swap_reads,
            res.run.fault_log.total(),
            res.run.fault_log.summary(),
            int.sweeps.iter().map(|d| d.as_nanos()).collect::<Vec<_>>(),
        )
    };
    let a = run();
    assert!(a.3 > 0, "the plan must actually inject faults: {}", a.4);
    assert_eq!(a, run(), "faulted run diverged between executions");
}

#[test]
fn different_versions_genuinely_differ() {
    // A sanity guard against accidentally ignoring the version knob.
    let p = run_once("MATVEC", Version::Prefetch);
    let r = run_once("MATVEC", Version::Release);
    assert_ne!(p.0, r.0, "P and R must differ");
}
