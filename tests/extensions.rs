//! End-to-end tests of this reproduction's extensions beyond the paper:
//! hardware reference bits (§6's open question), the reactive eviction
//! alternative (§2.2), the threshold-notified shared page (§3.1.1), the
//! STENCIL workload (§2.4), and the occupancy timeline.

use hogtame::prelude::*;

fn run_with(
    bench: &str,
    version: Version,
    tweak: impl FnOnce(&mut MachineConfig),
) -> hogtame::RunOutcome {
    let mut machine = MachineConfig::origin200();
    tweak(&mut machine);
    RunRequest::on(machine)
        .bench(bench, version)
        .interactive(SimDuration::from_secs(5), None)
        .run()
        .expect("benchmark is registered")
}

/// §6: with hardware reference bits the daemon's sampling produces no soft
/// faults — and releasing still speeds the hog up.
#[test]
fn hardware_refbits_kill_soft_faults_releasing_still_pays() {
    let p_hw = run_with("BUK", Version::Prefetch, |m| {
        m.tunables.hardware_refbits = true;
    });
    let hog = p_hw.hog.as_ref().unwrap();
    assert_eq!(
        p_hw.run
            .vm_stats
            .proc(hog.pid.0 as usize)
            .soft_faults_daemon
            .get(),
        0,
        "hardware bits must eliminate sampling soft faults"
    );
    assert_eq!(p_hw.run.vm_stats.pagingd.invalidations.get(), 0);
    // It still reclaims (the clock works through the bit).
    assert!(p_hw.run.vm_stats.pagingd.pages_stolen.get() > 1000);

    let r_hw = run_with("BUK", Version::Release, |m| {
        m.tunables.hardware_refbits = true;
    });
    let t_p = p_hw.hog.as_ref().unwrap().breakdown.total().as_secs_f64();
    let t_r = r_hw.hog.as_ref().unwrap().breakdown.total().as_secs_f64();
    assert!(
        t_r < 0.6 * t_p,
        "releasing must still pay with hardware refbits: R {t_r} vs P {t_p}"
    );
}

/// §2.2: the reactive alternative improves victim selection but leaves the
/// paging daemon running and forfeits the hog speedup releasing delivers.
#[test]
fn reactive_mode_keeps_daemon_running_and_hog_slow() {
    let v = run_with("MATVEC", Version::Reactive, |_| {});
    let r = run_with("MATVEC", Version::Release, |_| {});
    // The OS consumed the application's candidates...
    assert!(
        v.run.vm_stats.pagingd.reactive_steals.get() > 10_000,
        "reactive steals: {}",
        v.run.vm_stats.pagingd.reactive_steals.get()
    );
    // ... but the daemon still had to run,
    assert!(v.run.vm_stats.pagingd.activations.get() > 50);
    assert_eq!(r.run.vm_stats.pagingd.activations.get(), 0);
    // ... and nothing was released proactively,
    assert_eq!(v.run.vm_stats.releaser.pages_released.get(), 0);
    // ... so the hog runs far slower than under pro-active releasing.
    let t_v = v.hog.as_ref().unwrap().breakdown.total().as_secs_f64();
    let t_r = r.hog.as_ref().unwrap().breakdown.total().as_secs_f64();
    assert!(t_r < 0.6 * t_v, "R {t_r} vs V {t_v}");
}

/// §3.1.1: threshold-notified shared pages behave like the lazy design for
/// the paper's scenarios (the justification for not building it).
#[test]
fn threshold_notification_changes_little() {
    let lazy = run_with("MATVEC", Version::Buffered, |_| {});
    let notified = run_with("MATVEC", Version::Buffered, |m| {
        m.tunables.shared_update_threshold = Some(64);
    });
    let t_lazy = lazy.hog.as_ref().unwrap().breakdown.total().as_secs_f64();
    let t_notified = notified
        .hog
        .as_ref()
        .unwrap()
        .breakdown
        .total()
        .as_secs_f64();
    assert!(
        (t_notified / t_lazy - 1.0).abs() < 0.10,
        "lazy {t_lazy} vs threshold-notified {t_notified}"
    );
}

/// §2.4: STENCIL behaves like the well-analyzed benchmarks — releasing
/// speeds it up and fully protects the interactive task.
#[test]
fn stencil_textbook_behaviour() {
    let p = run_with("STENCIL", Version::Prefetch, |_| {});
    let r = run_with("STENCIL", Version::Release, |_| {});
    let t_p = p.hog.as_ref().unwrap().breakdown.total().as_secs_f64();
    let t_r = r.hog.as_ref().unwrap().breakdown.total().as_secs_f64();
    assert!(t_r < 0.7 * t_p, "R {t_r} vs P {t_p}");
    let alone_ish = 0.0015; // ~1 ms sweeps
    let resp = r
        .interactive
        .as_ref()
        .unwrap()
        .mean_response()
        .unwrap()
        .as_secs_f64();
    assert!(resp < 2.0 * alone_ish, "interactive resp {resp}");
    // Releases are essentially never premature for the stencil.
    let released = r.run.vm_stats.freed.freed_by_release.get();
    let rescued = r.run.vm_stats.freed.rescued_release.get();
    assert!(released > 10_000);
    assert!(rescued * 20 < released, "rescued {rescued} of {released}");
}

/// The occupancy timeline records the run's memory dynamics.
#[test]
fn timeline_captures_free_pool_collapse() {
    let mut machine = MachineConfig::origin200();
    machine.tunables.hardware_refbits = false;
    let res = RunRequest::on(machine)
        .bench("MATVEC", Version::Prefetch)
        .interactive(SimDuration::from_secs(5), None)
        .timeline(SimDuration::from_millis(500))
        .run()
        .expect("MATVEC is registered");
    let tl = res.run.timeline.expect("timeline enabled");
    assert!(tl.samples.len() > 50, "samples: {}", tl.samples.len());
    // Under P the free pool collapses below min_freemem territory at some
    // point, and the hog's RSS approaches the machine size.
    assert!(tl.min_free() < 200, "min free {}", tl.min_free());
    assert!(tl.max_rss(0) > 4_000, "hog peak {}", tl.max_rss(0));
    // Renderings work and carry all series.
    let ascii = tl.render_ascii(80);
    assert!(ascii.contains("free") && ascii.contains("interactive"));
    let csv = tl.to_csv();
    assert_eq!(csv.lines().count(), tl.samples.len() + 1);
}

/// Determinism holds for the extension modes too.
#[test]
fn extensions_are_deterministic() {
    let a = run_with("MATVEC", Version::Reactive, |m| {
        m.tunables.hardware_refbits = true;
    });
    let b = run_with("MATVEC", Version::Reactive, |m| {
        m.tunables.hardware_refbits = true;
    });
    assert_eq!(
        a.hog.as_ref().unwrap().finish_time,
        b.hog.as_ref().unwrap().finish_time
    );
    assert_eq!(
        a.run.vm_stats.pagingd.reactive_steals.get(),
        b.run.vm_stats.pagingd.reactive_steals.get()
    );
}
