//! Fleet-scale overload control, end to end.
//!
//! Five properties, each load-bearing for DESIGN.md §16:
//!
//! 1. **Defense** — under the demonstration storm the brownout ladder
//!    engages, sheds only tenants above their guaranteed share (never
//!    an interactive task), kills nothing, and keeps the fleet-wide
//!    p999 bounded.
//! 2. **Sensitivity** — the bound is not vacuous: the same storm with
//!    the ladder disarmed blows the tail bound by more than an order
//!    of magnitude.
//! 3. **Scale** — a datacenter-sized population (hundreds of hogs,
//!    thousands of interactive tasks) completes under checked mode
//!    with per-tenant tails and a fairness index in the results.
//! 4. **Determinism** — arrival plans are bit-identical across repeats,
//!    and whole fleet grids are bit-identical across executor worker
//!    counts (the `HOGTAME_JOBS` axis).
//! 5. **Exactness** — the tail percentiles reported for every tenant
//!    match a naive sort-and-index oracle on random samples.

use hogtame::prelude::*;
use sim_core::rng::Pcg32;

/// A digest of everything a fleet run reports; two runs with equal
/// digests are observationally identical (end time, per-process
/// outcomes, fleet stats, and the full metrics registry).
fn digest(out: &RunOutcome) -> String {
    format!(
        "end={} procs={:?} fleet={:?} metrics={}",
        out.run.end_time,
        out.run
            .procs
            .iter()
            .map(|p| (&p.name, p.finish_time, p.ops_executed, p.shed, p.oom_killed))
            .collect::<Vec<_>>(),
        out.run.fleet,
        out.run.metrics.to_prometheus(),
    )
}

#[test]
fn storm_with_ladder_sheds_safely_and_bounds_tails() {
    let out = RunRequest::on(MachineConfig::small())
        .fleet(FleetSpec::storm_demo(true))
        .run()
        .expect("defended storm runs");
    let f = out.run.fleet.as_ref().expect("fleet stats present");

    // The ladder engaged and the monitor saw the storm.
    assert!(f.pressure_shifts > 0, "no pressure shifts recorded");
    assert!(
        f.brownout_transitions > 0,
        "ladder never moved: {} shifts seen",
        f.pressure_shifts
    );
    let at_non_normal: u64 = f.time_at_level[1..].iter().map(|d| d.as_nanos()).sum();
    assert!(
        at_non_normal > 0,
        "no time above Normal: {:?}",
        f.time_at_level
    );

    // Typed outcomes only: sheds happened, kills did not.
    assert!(f.tenants_shed >= 1, "storm never forced a shed");
    assert_eq!(f.oom_kills, 0, "defended run must not OOM-kill");
    assert_eq!(f.tenants_shed as usize, f.sheds.len());

    // Every shed victim was a hog above its guaranteed share; no tenant
    // at or below its guarantee — and no interactive task — is ever shed.
    for s in &f.sheds {
        assert!(
            s.rss > s.guaranteed,
            "shed pid {} at rss {} <= guarantee {}",
            s.pid,
            s.rss,
            s.guaranteed
        );
        let victim = out
            .run
            .procs
            .iter()
            .find(|p| p.pid.0 == s.pid)
            .expect("shed pid maps to a registered process");
        assert!(victim.shed, "{} not marked shed", victim.name);
        assert!(
            victim.name.starts_with("fleet-hog") || victim.name.starts_with("fleet-surge"),
            "shed a non-hog: {}",
            victim.name
        );
    }
    for p in out
        .run
        .procs
        .iter()
        .filter(|p| p.name.starts_with("fleet-task"))
    {
        assert!(!p.shed && !p.oom_killed, "task {} was evicted", p.name);
    }

    // The SLO: fleet-wide p999 stays bounded (observed ~15 ms; the
    // bound leaves headroom without admitting an undefended run).
    assert!(
        f.overall.count > 0 && f.overall.p999 <= SimDuration::from_millis(100),
        "defended p999 {} over 100 ms ({} sweeps)",
        f.overall.p999,
        f.overall.count
    );

    // The storm is absorbed: post-surge throughput recovers to at least
    // 95% of the pre-surge rate.
    assert!(
        f.pre_surge_sweeps > 0 && f.post_surge_sweeps > 0,
        "surge windows empty: pre {} post {}",
        f.pre_surge_sweeps,
        f.post_surge_sweeps
    );
    assert!(
        f.post_surge_rate >= 0.95 * f.pre_surge_rate,
        "throughput did not recover: pre {:.1}/s post {:.1}/s",
        f.pre_surge_rate,
        f.post_surge_rate
    );
}

#[test]
fn undefended_storm_blows_the_tail_bound() {
    let out = RunRequest::on(MachineConfig::small())
        .fleet(FleetSpec::storm_demo(false))
        .run()
        .expect("undefended storm still completes");
    let f = out.run.fleet.as_ref().expect("fleet stats present");
    // No controller: no transitions, no sheds — and the tail shows it.
    assert_eq!(f.brownout_transitions, 0);
    assert_eq!(f.tenants_shed, 0);
    assert!(
        f.overall.p999 > SimDuration::from_millis(500),
        "undefended p999 {} should blow the 100 ms bound by an order of magnitude",
        f.overall.p999
    );
}

#[test]
fn datacenter_fleet_completes_under_checked_mode() {
    let spec = FleetSpec::datacenter(200, 2000);
    let plan = spec.plan();
    assert!(
        plan.iter().filter(|a| a.hog).count() >= 200,
        "plan lost hogs"
    );
    assert!(
        plan.iter().filter(|a| !a.hog).count() >= 2000,
        "plan lost tasks"
    );

    let out = RunRequest::on(MachineConfig::origin200())
        .fleet(spec)
        .checked()
        .run()
        .expect("datacenter fleet completes under checked mode");
    assert!(out.run.procs.len() >= 2200);
    assert!(
        out.run.procs.iter().all(|p| p.finish_time != SimTime::MAX),
        "every process reached a typed end"
    );

    let f = out.run.fleet.as_ref().expect("fleet stats present");
    assert_eq!(f.oom_kills, 0, "disk-paced baseline fleet must not OOM");
    // Tails and fairness are populated: an overall digest over thousands
    // of sweeps, per-tenant rows for every tenant that completed one,
    // and a meaningful Jain index.
    assert!(
        f.overall.count >= 2000,
        "only {} sweeps recorded",
        f.overall.count
    );
    assert!(f.tenants.len() >= 2, "per-tenant tails missing");
    for t in &f.tenants {
        assert!(t.count > 0 && t.p50 <= t.p99 && t.p99 <= t.p999 && t.p999 <= t.max);
    }
    assert!(
        f.jain > 0.0 && f.jain <= 1.0,
        "Jain out of range: {}",
        f.jain
    );
}

#[test]
fn arrival_plans_are_bit_identical_across_repeats() {
    for seed in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
        let spec = FleetSpec {
            seed,
            surge: Some(SurgeSpec::default()),
            ..FleetSpec::default()
        };
        let first = spec.plan();
        assert!(!first.is_empty());
        for _ in 0..3 {
            assert_eq!(
                first,
                spec.plan(),
                "plan drifted across repeats (seed {seed})"
            );
        }
        // A freshly constructed equal spec plans the same fleet.
        assert_eq!(first, spec.clone().plan());
    }
}

#[test]
fn fleet_grid_is_bit_identical_across_worker_counts() {
    let grid = || -> Vec<RunRequest> {
        [1u64, 7, 23]
            .iter()
            .map(|&seed| {
                RunRequest::on(MachineConfig::small()).fleet(FleetSpec {
                    seed,
                    hogs: 6,
                    tasks: 60,
                    horizon: SimDuration::from_secs(4),
                    ..FleetSpec::default()
                })
            })
            .collect()
    };
    let serial = exec::run_all_with(grid(), 1);
    let pooled = exec::run_all_with(grid(), 4);
    assert_eq!(serial.len(), pooled.len());
    for (i, (a, b)) in serial.iter().zip(&pooled).enumerate() {
        let a = a.as_ref().expect("serial run succeeds");
        let b = b.as_ref().expect("pooled run succeeds");
        assert_eq!(
            digest(a),
            digest(b),
            "request {i} differs across worker counts"
        );
    }
}

#[test]
fn tail_digest_matches_exact_sort_oracle() {
    let mut rng = Pcg32::new(0xFEED, 1);
    // Sizes straddling every rank-rounding edge, including n=1 and sizes
    // where p99/p999 collapse onto the max.
    for n in [1usize, 2, 3, 10, 99, 100, 101, 999, 1000, 1001, 4096] {
        let mut digest = TailDigest::new();
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            let v = u64::from(rng.next_u32() % 1_000_000);
            samples.push(v);
            digest.record(SimDuration::from_nanos(v));
        }
        samples.sort_unstable();
        let oracle = |p: f64| -> u64 {
            let rank = ((p * n as f64).ceil() as usize).max(1);
            samples[rank - 1]
        };
        let (p50, p99, p999) = digest.tail();
        assert_eq!(p50.as_nanos(), oracle(0.5), "p50 diverges at n={n}");
        assert_eq!(p99.as_nanos(), oracle(0.99), "p99 diverges at n={n}");
        assert_eq!(p999.as_nanos(), oracle(0.999), "p999 diverges at n={n}");
        assert_eq!(
            digest.max().as_nanos(),
            samples[n - 1],
            "max diverges at n={n}"
        );
        assert_eq!(digest.count(), n as u64);
    }
}
