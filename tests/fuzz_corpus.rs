//! Corpus regression gate: the committed seed-0..31 fuzz corpus.
//!
//! Each `tests/corpus/seed_NNN.txt` is the full rendered case (runtime
//! truth + source + compiled output) for one generator seed. The tests
//! (1) regenerate each case from its seed and require byte-identity with
//! the committed file — any generator or pipeline change that moves a
//! case is surfaced as a diff to review, and (2) replay every corpus
//! program through the engine under `HOGTAME_CHECKED=1`.
//!
//! To re-bless after an intentional generator/pipeline change:
//! `HOGTAME_BLESS=1 cargo test --test fuzz_corpus`.

use std::path::PathBuf;

use hogtame::fuzzing;
use hogtame::prelude::*;

const CORPUS_SEEDS: u64 = 32;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

fn case_path(seed: u64) -> PathBuf {
    corpus_dir().join(format!("seed_{seed:03}.txt"))
}

fn blessing() -> bool {
    std::env::var_os("HOGTAME_BLESS").is_some_and(|v| v == "1")
}

#[test]
fn corpus_matches_generator_byte_for_byte() {
    let machine = MachineConfig::small();
    if blessing() {
        std::fs::create_dir_all(corpus_dir()).expect("create corpus dir");
    }
    let mut mismatches = Vec::new();
    for seed in 0..CORPUS_SEEDS {
        let rendered = fuzzing::render_case(&compiler::gen::generate(seed), &machine);
        let path = case_path(seed);
        if blessing() {
            std::fs::write(&path, &rendered).expect("write corpus case");
            continue;
        }
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing corpus file {} ({e})", path.display()));
        if committed != rendered {
            mismatches.push(seed);
        }
    }
    assert!(
        mismatches.is_empty(),
        "corpus cases {mismatches:?} no longer match the generator; \
         re-bless with HOGTAME_BLESS=1 if the change is intentional"
    );
}

#[test]
fn corpus_replays_clean_under_checked_mode() {
    // The committed corpus is a regression gate: every case must still
    // pass every differential check (sanitizer + oracle clean, hinted ≡
    // unhinted, metamorphic properties). CI runs this under
    // HOGTAME_CHECKED=1; calling check_case arms checked mode explicitly
    // either way.
    let machine = MachineConfig::small();
    for seed in 0..CORPUS_SEEDS {
        let spec = workloads::fuzz::spec(seed);
        if let Err(failure) = fuzzing::check_case(&spec, &machine, None) {
            panic!("corpus seed {seed} regressed: {failure}");
        }
    }
}

#[test]
fn corpus_headers_carry_the_seed_and_fingerprint() {
    if blessing() {
        return;
    }
    for seed in 0..CORPUS_SEEDS {
        let text = std::fs::read_to_string(case_path(seed)).expect("corpus file");
        assert!(text.starts_with("# fuzz corpus case"), "seed {seed}");
        assert!(text.contains(&format!("# seed: {seed}\n")), "seed {seed}");
        assert!(text.contains("# ir-fingerprint: "), "seed {seed}");
        assert!(text.contains("/* --- compiled"), "seed {seed}");
    }
}
