//! Generator determinism properties (fuzzer satellite).
//!
//! Same seed → byte-identical `SourceProgram` (via `pretty.rs` rendering)
//! and identical run digests across repeats and worker counts. The fuzz
//! matrix's double-run `diff -r` in CI rests on exactly these properties.

use hogtame::exec::run_all_with;
use hogtame::fuzzing;
use hogtame::prelude::*;
use sim_core::fingerprint::Fnv1a;

fn digest(results: &[Result<RunOutcome, RunError>]) -> u64 {
    let mut h = Fnv1a::new();
    for r in results {
        match r {
            Ok(out) => {
                h.write_bool(true);
                h.write_u64(out.hog.as_ref().map_or(0, |p| p.finish_time.as_nanos()));
                h.write_u64(out.run.swap_reads);
                h.write_u64(out.run.swap_writes);
                h.write_u64(out.run.end_time.as_nanos());
            }
            Err(e) => {
                h.write_bool(false);
                h.write_str(&format!("{e:?}"));
            }
        }
    }
    h.finish()
}

fn fuzz_grid() -> Vec<RunRequest> {
    let machine = MachineConfig::small();
    (0..6u64)
        .flat_map(|seed| {
            [Version::Original, Version::Release].map(|v| {
                RunRequest::on(machine.clone())
                    .bench_spec(workloads::fuzz::spec(seed), v)
                    .checked()
            })
        })
        .collect()
}

#[test]
fn same_seed_renders_byte_identically() {
    for seed in 0..64u64 {
        let a = compiler::gen::generate(seed);
        let b = compiler::gen::generate(seed);
        assert_eq!(
            compiler::pretty::render_source(&a.source),
            compiler::pretty::render_source(&b.source),
            "seed {seed}"
        );
        assert_eq!(a.fingerprint(), b.fingerprint(), "seed {seed}");
    }
}

#[test]
fn rendered_case_is_stable_across_repeats() {
    let machine = MachineConfig::small();
    for seed in [0u64, 9, 31] {
        let a = fuzzing::render_case(&compiler::gen::generate(seed), &machine);
        let b = fuzzing::render_case(&compiler::gen::generate(seed), &machine);
        assert_eq!(a, b, "seed {seed}");
    }
}

#[test]
fn run_digest_identical_across_repeats_and_job_counts() {
    let serial = digest(&run_all_with(fuzz_grid(), 1));
    let serial_again = digest(&run_all_with(fuzz_grid(), 1));
    assert_eq!(serial, serial_again, "serial repeat must be bit-identical");
    let parallel = digest(&run_all_with(fuzz_grid(), 4));
    assert_eq!(
        serial, parallel,
        "4-worker pool must be bit-identical to serial"
    );
}

#[test]
fn check_case_digest_is_reproducible() {
    let machine = MachineConfig::small();
    for seed in [2u64, 17] {
        let spec = workloads::fuzz::spec(seed);
        let a = fuzzing::check_case(&spec, &machine, None).expect("clean");
        let b = fuzzing::check_case(&spec, &machine, None).expect("clean");
        assert_eq!(a, b, "seed {seed}");
    }
}
