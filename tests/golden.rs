//! Golden regression pins.
//!
//! The simulation is deterministic, so key metrics of a reference scenario
//! can be pinned *exactly*. If a change moves any of these numbers, that is
//! a behaviour change: either a bug, or an intentional calibration change
//! that must update this file **and** EXPERIMENTS.md together.

mod common;

use hogtame::prelude::*;
use sim_core::stats::TimeCategory;

fn matvec_buffered() -> hogtame::RunOutcome {
    common::run_cell("MATVEC", Version::Buffered)
}

#[test]
fn matvec_buffered_reference_run() {
    let res = matvec_buffered();
    let hog = res.hog.as_ref().unwrap();
    let int = res.interactive.as_ref().unwrap();
    let vm = &res.run.vm_stats;

    // Exact event counts of the reference run. (38398 before tag
    // retirement: the nest-exit flush now releases each release
    // directive's trailing one-behind page instead of leaking it.)
    assert_eq!(vm.releaser.pages_released.get(), 38399, "pages released");
    assert_eq!(vm.pagingd.activations.get(), 0, "daemon activations");
    assert_eq!(vm.pagingd.pages_stolen.get(), 0, "pages stolen");
    assert_eq!(
        vm.proc(hog.pid.0 as usize).hard_faults.get(),
        0,
        "hog demand faults"
    );
    assert_eq!(vm.freed.rescued_release.get(), 0, "premature releases");

    // The interactive task is untouched: zero hard faults in every sweep.
    assert_eq!(int.mean_sweep_faults(), Some(0.0));

    // Time shape (coarse bands rather than exact ns, so cost-parameter
    // tweaks fail loudly but readably).
    let total = hog.breakdown.total().as_secs_f64();
    assert!(
        (20.0..26.0).contains(&total),
        "MATVEC-B total drifted: {total:.2} s (expected ≈ 22.8 s)"
    );
    let io = hog.breakdown.get(TimeCategory::StallIo).as_secs_f64();
    assert!(
        (0.75..0.95).contains(&(io / total)),
        "I/O fraction drifted: {:.2}",
        io / total
    );

    // Bit-exact completion pin. If this moves, update EXPERIMENTS.md.
    assert_eq!(
        hog.finish_time.as_nanos(),
        {
            let again = matvec_buffered();
            again.hog.unwrap().finish_time.as_nanos()
        },
        "determinism broken"
    );
}

#[test]
fn interactive_alone_reference_run() {
    let res = RunRequest::on(MachineConfig::origin200())
        .interactive(SimDuration::from_secs(5), Some(12))
        .run()
        .expect("interactive task installed");
    let zero_fills = res.vm_stats_zero_fills();
    let int = res.interactive.unwrap();
    // 64 pages of 15 µs work + 65 hits ≈ 1.0075 ms warm response.
    let ms = int.mean_response().unwrap().as_millis_f64();
    assert!(
        (1.0..1.05).contains(&ms),
        "alone response drifted: {ms:.4} ms"
    );
    // Cold sweep: 65 zero-fill faults.
    assert_eq!(zero_fills, 65);
}

trait ZeroFills {
    fn vm_stats_zero_fills(&self) -> u64;
}
impl ZeroFills for hogtame::RunOutcome {
    fn vm_stats_zero_fills(&self) -> u64 {
        let pid = self.interactive.as_ref().unwrap().pid.0 as usize;
        self.run.vm_stats.proc(pid).zero_fills.get()
    }
}
