//! Cross-crate integration tests: compiler → runtime → engine → VM,
//! exercised end to end on the full-size simulated machine.

use hogtame::prelude::*;
use hogtame::scenario::install_bench;
use sim_core::stats::TimeCategory;

/// Compiling and executing every benchmark in every version terminates and
/// conserves physical frames.
#[test]
fn every_benchmark_every_version_conserves_frames() {
    // Keep the expensive O versions to the cheap benchmarks; P/R/B run for
    // everything (they are fast).
    for spec in workloads::all_benchmarks() {
        for version in [Version::Prefetch, Version::Release, Version::Buffered] {
            let mut engine = Engine::new(MachineConfig::origin200());
            let pid = install_bench(&mut engine, &spec, version, Default::default());
            let total = engine.vm().total_frames();
            let result = engine.run();
            let hog = &result.procs[0];
            assert!(
                hog.finish_time < SimTime::MAX,
                "{}-{} never finished",
                spec.name,
                version.label()
            );
            // Frame conservation: what the process still holds plus the
            // free list must equal the machine.
            let rss = result.vm_stats.proc(pid.0 as usize).peak_rss;
            assert!(rss <= total, "{}: rss {rss} > total {total}", spec.name);
        }
    }
}

/// The compiled executables touch exactly the same data in every version:
/// O/P/R/B differ in hints, never in the computation performed.
#[test]
fn versions_perform_identical_work() {
    let mut totals = Vec::new();
    for version in Version::ALL {
        let res = RunRequest::on(MachineConfig::origin200())
            .bench("EMBAR", version)
            .run()
            .expect("EMBAR is registered");
        let hog = res.hog.unwrap();
        totals.push(hog.breakdown.get(TimeCategory::User).as_secs_f64());
    }
    // User time differs only by run-time-layer overhead (small, positive).
    let base = totals[0];
    for (i, t) in totals.iter().enumerate() {
        assert!(
            (*t - base).abs() / base < 0.05,
            "version {i} user time {t} vs O {base}"
        );
        assert!(*t >= base - 1e-9, "hints can only add user time");
    }
}

/// The engine's time accounting is complete: an out-of-core process's
/// breakdown sums to its completion time (it never sleeps).
#[test]
fn breakdown_accounts_for_all_time() {
    let res = RunRequest::on(MachineConfig::origin200())
        .bench("MGRID", Version::Release)
        .run()
        .expect("MGRID is registered");
    let hog = res.hog.unwrap();
    let total = hog.breakdown.total().as_secs_f64();
    let finish = hog.finish_time.as_secs_f64();
    assert!(
        (total - finish).abs() < 0.02 * finish,
        "breakdown {total} vs finish {finish}"
    );
}

/// Disk traffic is consistent with fault/prefetch counts.
#[test]
fn swap_reads_match_page_in_activity() {
    let res = RunRequest::on(MachineConfig::origin200())
        .bench("EMBAR", Version::Prefetch)
        .run()
        .expect("EMBAR is registered");
    let hog = res.hog.unwrap();
    let stats = res.run.vm_stats.proc(hog.pid.0 as usize);
    let page_ins = stats.hard_faults.get() + stats.prefetch_requests.get()
        - stats.prefetch_discarded.get()
        - stats.prefetch_redundant.get();
    // Rescues and zero-fills do no I/O; everything else reads swap once.
    assert!(
        res.run.swap_reads <= page_ins,
        "reads {} > page-ins {page_ins}",
        res.run.swap_reads
    );
    assert!(
        res.run.swap_reads + stats.rescues.get() + 16 >= page_ins,
        "reads {} + rescues {} far below page-ins {page_ins}",
        res.run.swap_reads,
        stats.rescues.get()
    );
}

/// The shared page's residency bitmap agrees with the page table at end of
/// run (spot check through the public API).
#[test]
fn bitmap_consistency_via_prefetch_filtering() {
    // If the bitmap ever disagreed with residency, the run-time layer
    // would either double-prefetch resident pages (wasted I/O we can see)
    // or skip needed ones (hard faults under R). A clean R run of MATVEC
    // shows neither.
    let res = RunRequest::on(MachineConfig::origin200())
        .bench("MATVEC", Version::Release)
        .run()
        .expect("MATVEC is registered");
    let hog = res.hog.unwrap();
    let stats = res.run.vm_stats.proc(hog.pid.0 as usize);
    assert_eq!(
        stats.hard_faults.get(),
        0,
        "R-MATVEC must never demand-fault (prefetches cover everything)"
    );
    assert_eq!(stats.prefetch_redundant.get(), 0, "no double prefetches");
}

/// Experiment tables render with a full row set.
#[test]
fn suite_tables_have_expected_shape() {
    let suite = hogtame::experiments::suite::run(
        &MachineConfig::origin200(),
        Some(&["MATVEC", "EMBAR"]),
        SimDuration::from_secs(5),
    )
    .expect("suite runs");
    assert_eq!(suite.fig07().len(), 8, "2 benchmarks × 4 versions");
    assert_eq!(suite.fig08().len(), 8);
    assert_eq!(suite.table3().len(), 2);
    assert_eq!(suite.fig09().len(), 8);
    assert_eq!(suite.fig10b().len(), 8);
    assert_eq!(suite.fig10c().len(), 8);
    // CSV round-trips contain every benchmark.
    let csv = suite.fig07().to_csv();
    assert!(csv.contains("MATVEC") && csv.contains("EMBAR"));
}

/// Two hogs can share the machine (beyond the paper's scenarios).
#[test]
fn two_hogs_coexist() {
    let mut engine = Engine::new(MachineConfig::origin200());
    let a = install_bench(
        &mut engine,
        &workloads::benchmark("EMBAR").unwrap(),
        Version::Release,
        Default::default(),
    );
    let b = install_bench(
        &mut engine,
        &workloads::benchmark("MGRID").unwrap(),
        Version::Release,
        Default::default(),
    );
    let res = engine.run();
    assert!(res.procs.iter().all(|p| p.finish_time < SimTime::MAX));
    assert!(res.vm_stats.proc(a.0 as usize).allocations.get() > 0);
    assert!(res.vm_stats.proc(b.0 as usize).allocations.get() > 0);
    // Releasing keeps even a two-hog machine off the paging daemon's back
    // most of the time.
    let stolen = res.vm_stats.pagingd.pages_stolen.get();
    let released = res.vm_stats.releaser.pages_released.get();
    assert!(
        released > stolen,
        "releases ({released}) should dominate steals ({stolen})"
    );
}
