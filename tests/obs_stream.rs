//! The observability layer's three load-bearing promises, end to end:
//!
//! 1. **Determinism** — the merged event stream (and every export derived
//!    from it) is byte-identical whether a grid runs serially, on a
//!    4-worker pool, or resumes from a kill-then-resume journal pass.
//! 2. **Attribution** — per-hint lifecycle counts in the stream reconcile
//!    *exactly* with the independent `vm::stats` / `RtStats` counters, so
//!    the outcome table can be trusted against the paper's tables.
//! 3. **Exports** — the Chrome trace / JSONL / Prometheus renderings are
//!    well-formed and non-empty for observed runs, and instrumentation
//!    stays fully disabled (zero events) for plain runs.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use hogtame::prelude::*;

/// A fresh, process-unique scratch directory (no timestamps: tests must
/// stay deterministic and runnable in parallel).
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "hogtame-obs-stream-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

const SLEEP: SimDuration = SimDuration::from_secs(1);

/// A mixed grid: observed hog+interactive runs (R and B exercise both
/// release policies), an observed hog-only run, an observed
/// interactive-only run, and one *plain* run that must stay event-free.
fn grid() -> Vec<RunRequest> {
    let m = MachineConfig::small;
    vec![
        RunRequest::on(m())
            .bench("MATVEC", Version::Release)
            .interactive(SLEEP, None)
            .observe(),
        RunRequest::on(m())
            .bench("MATVEC", Version::Buffered)
            .interactive(SLEEP, None)
            .observe(),
        RunRequest::on(m())
            .bench("EMBAR", Version::Original)
            .observe(),
        // Interactive alone must bound its sweeps — unbounded, it only
        // stops when a hog finishes, and there is none here.
        RunRequest::on(m()).interactive(SLEEP, Some(10)).observe(),
        RunRequest::on(m()).bench("MATVEC", Version::Prefetch),
    ]
}

/// Flattens a grid's outcomes to the exports whose bytes we pin: the
/// JSONL event stream and the Prometheus metrics text per request.
fn export_bytes(outcomes: &[Result<RunOutcome, RunError>]) -> Vec<(String, String)> {
    outcomes
        .iter()
        .map(|r| {
            let out = r.as_ref().expect("grid request succeeds");
            (out.run.events.to_jsonl(), out.run.metrics.to_prometheus())
        })
        .collect()
}

#[test]
fn event_streams_are_byte_identical_across_worker_counts() {
    let serial = export_bytes(&exec::run_all_journaled(grid(), 1, None));
    for jobs in [2, 4] {
        let pooled = export_bytes(&exec::run_all_journaled(grid(), jobs, None));
        assert_eq!(
            serial, pooled,
            "jsonl + prometheus exports must not depend on jobs={jobs}"
        );
    }
    // Sanity on the reference pass itself: observed runs carry events,
    // the plain run carries none (disabled means *off*, not "fewer").
    let observed_totals: Vec<usize> = serial.iter().map(|(j, _)| j.lines().count()).collect();
    assert!(
        observed_totals[..4].iter().all(|&n| n > 0),
        "observed runs record events: {observed_totals:?}"
    );
    assert_eq!(observed_totals[4], 0, "plain run records no events");
}

#[test]
fn killed_observed_grid_resumes_byte_identical() {
    let straight = export_bytes(&exec::run_all_journaled(grid(), 1, None));

    let dir = scratch("journal");
    let journal = Journal::at(&dir).expect("journal opens");
    let killed = exec::run_all_until(grid(), 2, &journal, 2);
    assert!(killed >= 2, "the pool completed work before the kill");
    // Observed requests are not journalable — at most the one plain
    // request may have produced a record before the kill.
    assert!(
        journal.len() <= 1,
        "observe runs must never be journaled, found {} records",
        journal.len()
    );

    let resumed = exec::run_all_journaled(grid(), 2, Some(&journal));
    assert_eq!(
        straight,
        export_bytes(&resumed),
        "kill-then-resume must reproduce the uninterrupted exports"
    );
    // The resumed observed runs re-simulated (journal replay would have
    // come back with an empty stream).
    for out in resumed[..4].iter().map(|r| r.as_ref().unwrap()) {
        assert!(out.run.events.total() > 0, "observed runs re-simulate");
    }
}

/// Runs one observed benchmark + interactive scenario and checks every
/// event count in the stream against the subsystem's own statistics.
fn reconcile(bench: &str, version: Version) {
    let out = RunRequest::on(MachineConfig::small())
        .bench(bench, version)
        .interactive(SLEEP, None)
        .observe()
        .run()
        .expect("benchmark is registered");
    let ev = &out.run.events;
    let vm = &out.run.vm_stats;
    let tag = format!("{bench}-{}", version.label());
    let check = |name: &str, expect: u64| {
        assert_eq!(ev.count(name), expect, "{tag}: event count {name}");
    };

    // Kernel freed-page outcomes and releaser decisions.
    check("freed_by_release", vm.freed.freed_by_release.get());
    check("freed_by_daemon", vm.freed.freed_by_daemon.get());
    check("rescue_release", vm.freed.rescued_release.get());
    check("rescue_daemon", vm.freed.rescued_daemon.get());
    check("release_accepted", vm.releaser.requests.get());
    check("release_skipped_reref", vm.releaser.skipped_reref.get());
    check(
        "release_skipped_nonresident",
        vm.releaser.skipped_nonresident.get(),
    );
    check("releaser_batch", vm.releaser.activations.get());
    assert!(
        ev.count("pagingd_scan") <= vm.pagingd.activations.get(),
        "{tag}: a scan event needs a non-empty activation"
    );

    // Per-process fault taxonomy.
    let procs = |f: fn(&vm::ProcStats) -> u64| vm.procs.iter().map(f).sum::<u64>();
    check("hard_fault", procs(|p| p.hard_faults.get()));
    check("zero_fill", procs(|p| p.zero_fills.get()));
    check("soft_fault_daemon", procs(|p| p.soft_faults_daemon.get()));
    check("release_cancelled", procs(|p| p.soft_faults_release.get()));
    check("prefetch_validated", procs(|p| p.prefetch_validates.get()));
    check("prefetch_redundant", procs(|p| p.prefetch_redundant.get()));
    check("prefetch_discarded", procs(|p| p.prefetch_discarded.get()));

    // Swap device: one Io span per completed transfer.
    check("io_read", out.run.swap_reads);
    check("io_write", out.run.swap_writes);

    // Run-time layer filters (summed across processes that have one).
    let rt = |f: fn(&runtime::RtStats) -> u64| {
        out.run
            .procs
            .iter()
            .filter_map(|p| p.rt_stats.as_ref())
            .map(f)
            .sum::<u64>()
    };
    check("release_hint", rt(|s| s.release_hints));
    check("release_issued", rt(|s| s.release_issued_direct));
    check("release_buffered", rt(|s| s.release_buffered));
    check("release_drained", rt(|s| s.release_drained));
    check("prefetch_issued", rt(|s| s.prefetch_issued));
    check("prefetch_filtered", rt(|s| s.prefetch_filtered));

    // The outcome table is exactly the counters, re-attributed.
    let rel = ev.release_outcome();
    assert_eq!(
        rel.good,
        vm.freed.freed_by_release.get() - vm.freed.rescued_release.get(),
        "{tag}: good releases"
    );
    assert_eq!(
        rel.wasted,
        vm.releaser.skipped_reref.get()
            + procs(|p| p.soft_faults_release.get())
            + vm.freed.rescued_release.get(),
        "{tag}: wasted releases"
    );
    let pre = ev.prefetch_outcome();
    assert_eq!(
        pre.good,
        procs(|p| p.prefetch_validates.get()),
        "{tag}: good prefetches"
    );
    assert_eq!(
        pre.wasted,
        procs(|p| p.prefetch_redundant.get()) + procs(|p| p.prefetch_discarded.get()),
        "{tag}: wasted prefetches"
    );

    // The hint path actually fired in hinted versions: the reconciliation
    // above must not be vacuous 0 == 0 equalities.
    assert!(
        ev.count("release_hint") > 0,
        "{tag}: release hints were emitted"
    );
    assert!(
        vm.freed.freed_by_release.get() > 0,
        "{tag}: releases freed pages"
    );

    // Metrics snapshot agrees with the same ground truth.
    let m = &out.run.metrics;
    assert_eq!(
        m.counter_value("hogtame_swap_reads_total"),
        out.run.swap_reads
    );
    assert_eq!(
        m.counter_value("hogtame_freed_by_release_total"),
        vm.freed.freed_by_release.get()
    );
    assert_eq!(
        m.counter_value("hogtame_releaser_requests_total"),
        vm.releaser.requests.get()
    );
}

#[test]
fn matvec_release_counts_reconcile_with_vm_stats() {
    reconcile("MATVEC", Version::Release);
}

#[test]
fn matvec_buffered_counts_reconcile_with_vm_stats() {
    reconcile("MATVEC", Version::Buffered);
}

#[test]
fn exports_are_well_formed() {
    let out = RunRequest::on(MachineConfig::small())
        .bench("MATVEC", Version::Release)
        .interactive(SLEEP, None)
        .observe()
        .run()
        .unwrap();
    let ev = &out.run.events;

    // Chrome trace: the envelope Perfetto / chrome://tracing expects,
    // with process-name metadata records for every registered process.
    let names: Vec<String> = out.run.procs.iter().map(|p| p.name.clone()).collect();
    let chrome = ev.to_chrome_trace(&names);
    assert!(
        chrome.starts_with("{\"traceEvents\":["),
        "got: {:.60}",
        chrome
    );
    assert!(chrome.ends_with("\"displayTimeUnit\":\"ms\"}\n"));
    assert!(chrome.contains("\"ph\":\"M\""), "metadata records present");
    assert!(chrome.contains("process_name"));

    // JSONL: one object per retained event, every line self-contained.
    let jsonl = ev.to_jsonl();
    assert_eq!(jsonl.lines().count(), ev.events().len());
    for line in jsonl.lines().take(50) {
        assert!(line.starts_with('{') && line.ends_with('}'), "got: {line}");
        assert!(line.contains("\"t_ns\":") && line.contains("\"name\":"));
    }

    // Prometheus text: HELP/TYPE headers pair with every sample.
    let prom = out.run.metrics.to_prometheus();
    assert!(!out.run.metrics.is_empty());
    assert!(prom.contains("# HELP hogtame_sim_end_seconds"));
    assert!(prom.contains("# TYPE hogtame_swap_reads_total counter"));

    // A plain (unobserved) run: zero events, yet metrics stay populated
    // and the legacy kernel-trace stays empty without `kernel_trace()`.
    let plain = RunRequest::on(MachineConfig::small())
        .bench("MATVEC", Version::Release)
        .interactive(SLEEP, None)
        .run()
        .unwrap();
    assert_eq!(plain.run.events.total(), 0);
    assert_eq!(plain.run.events.dropped(), 0);
    assert!(plain.run.kernel_trace.is_empty());
    assert!(!plain.run.metrics.is_empty(), "metrics always populated");
    // And the simulation itself is untouched by instrumentation.
    assert_eq!(plain.run.end_time, out.run.end_time);
    assert_eq!(plain.run.swap_reads, out.run.swap_reads);
}
