//! The paper's headline claims, asserted end to end.
//!
//! Each test names the claim it checks and the section/figure it comes
//! from. Absolute numbers are simulator-specific; the assertions pin the
//! *shapes*: orderings, approximate factors, and crossovers.

mod common;

use common::{hog_total, int_resp, run_cell};
use hogtame::experiments::suite;
use hogtame::prelude::*;
use sim_core::stats::TimeCategory;

/// §4.3: "All prefetching versions of the benchmarks achieve similar
/// reductions in the I/O stall time, with over 85% of the I/O stall
/// eliminated in all cases" — our substrate reaches ≥60% for P and ≥80%
/// for R on every benchmark.
#[test]
fn prefetching_hides_most_io_stall() {
    for bench in ["EMBAR", "MATVEC", "CGM", "MGRID"] {
        let o = run_cell(bench, Version::Original);
        let p = run_cell(bench, Version::Prefetch);
        let r = run_cell(bench, Version::Release);
        let io = |res: &hogtame::RunOutcome| {
            res.hog
                .as_ref()
                .unwrap()
                .breakdown
                .get(TimeCategory::StallIo)
                .as_secs_f64()
        };
        assert!(
            io(&p) < 0.4 * io(&o),
            "{bench}: P stall {} vs O {}",
            io(&p),
            io(&o)
        );
        assert!(
            io(&r) < 0.2 * io(&o),
            "{bench}: R stall {} vs O {}",
            io(&r),
            io(&o)
        );
    }
}

/// §4.3: "there is a substantial reduction in the execution time of the
/// out-of-core applications when releasing is applied aggressively. The
/// speedups from applying both prefetching and releasing over prefetching
/// alone range from 13% for EMBAR to over 50% for CGM."
#[test]
fn releasing_speeds_up_the_hog_beyond_prefetching() {
    for bench in ["EMBAR", "MATVEC", "BUK", "CGM", "MGRID", "FFTPDE"] {
        let p = run_cell(bench, Version::Prefetch);
        let r = run_cell(bench, Version::Release);
        let speedup = hog_total(&p) / hog_total(&r);
        assert!(
            speedup > 1.10,
            "{bench}: releasing must beat prefetch-only by >10% (got {speedup:.3})"
        );
    }
}

/// §4.3 MATVEC: aggressive releasing throws the vector away and buffering
/// fixes it — "the benefit of buffering and prioritizing releases is
/// dramatic".
#[test]
fn matvec_buffering_beats_aggressive_dramatically() {
    let r = run_cell("MATVEC", Version::Release);
    let b = run_cell("MATVEC", Version::Buffered);
    assert!(
        hog_total(&b) < 0.6 * hog_total(&r),
        "B {} vs R {}",
        hog_total(&b),
        hog_total(&r)
    );
    // The vector's pages are spared: B releases roughly half as many.
    let rel_r = r.run.vm_stats.releaser.pages_released.get();
    let rel_b = b.run.vm_stats.releaser.pages_released.get();
    assert!(rel_b * 3 < rel_r * 2, "B released {rel_b} vs R {rel_r}");
}

/// §4.3: "In all cases except for FFTPDE and MATVEC, the results for
/// aggressive releasing and release buffering are very similar."
#[test]
fn aggressive_and_buffered_match_when_no_temporal_reuse() {
    for bench in ["EMBAR", "BUK", "CGM", "MGRID"] {
        let r = run_cell(bench, Version::Release);
        let b = run_cell(bench, Version::Buffered);
        let ratio = hog_total(&b) / hog_total(&r);
        assert!(
            (0.95..1.05).contains(&ratio),
            "{bench}: R/B must be near-identical (ratio {ratio:.3})"
        );
    }
}

/// Figure 1 / §1.1: prefetching makes the interactive task's response rise
/// at much shorter sleep times and to a higher level than the original.
#[test]
fn prefetching_hurts_interactive_more_than_original() {
    let o = run_cell("MATVEC", Version::Original);
    let p = run_cell("MATVEC", Version::Prefetch);
    assert!(
        int_resp(&p) > 2.0 * int_resp(&o),
        "P response {} vs O {}",
        int_resp(&p),
        int_resp(&o)
    );
}

/// Figure 10(a)/(b): "When releasing is added to prefetching, the response
/// times of the interactive task almost perfectly match the times obtained
/// when it is run alone on the machine."
#[test]
fn releasing_restores_interactive_response_for_every_benchmark() {
    let alone = RunRequest::on(MachineConfig::origin200())
        .interactive(SimDuration::from_secs(5), Some(12))
        .run()
        .expect("interactive task installed")
        .interactive
        .unwrap()
        .mean_response()
        .unwrap()
        .as_secs_f64();
    for bench in ["EMBAR", "MATVEC", "BUK", "CGM", "MGRID", "FFTPDE"] {
        for version in [Version::Release, Version::Buffered] {
            let res = run_cell(bench, version);
            let resp = int_resp(&res);
            assert!(
                resp < 1.5 * alone,
                "{bench}-{}: interactive {resp}s vs alone {alone}s",
                version.label()
            );
        }
    }
}

/// Table 3: "releases are usually very effective at reducing the need for
/// the paging daemon to reclaim memory … the activity of the paging daemon
/// is reduced by one to two orders of magnitude."
#[test]
fn releasing_idles_the_paging_daemon() {
    for bench in ["EMBAR", "MATVEC", "CGM", "FFTPDE"] {
        let o = run_cell(bench, Version::Original);
        let r = run_cell(bench, Version::Release);
        let stolen_o = o.run.vm_stats.pagingd.pages_stolen.get();
        let stolen_r = r.run.vm_stats.pagingd.pages_stolen.get();
        assert!(
            stolen_r * 3 <= stolen_o,
            "{bench}: O stole {stolen_o}, R stole {stolen_r}"
        );
    }
}

/// Figure 10(c): hard faults of the interactive task drop to (near) zero
/// with releasing.
#[test]
fn interactive_faults_vanish_with_releasing() {
    for bench in ["MATVEC", "CGM"] {
        let p = run_cell(bench, Version::Prefetch);
        let r = run_cell(bench, Version::Release);
        let fp = p.interactive.as_ref().unwrap().mean_sweep_faults().unwrap();
        let fr = r.interactive.as_ref().unwrap().mean_sweep_faults().unwrap();
        assert!(
            fp > 1.0,
            "{bench}: P must fault the interactive task ({fp})"
        );
        assert!(fr < 0.5, "{bench}: R faults {fr} must be near zero");
    }
}

/// Figure 9 / §4.4 MGRID: "more than half of the pages explicitly released
/// are reclaimed from the free list" — the compiler cannot release
/// correctly when loop bounds change across calls. We assert a substantial
/// rescued fraction, unique to MGRID.
#[test]
fn mgrid_releases_are_often_premature() {
    let r = run_cell("MGRID", Version::Release);
    let released = r.run.vm_stats.freed.freed_by_release.get();
    let rescued = r.run.vm_stats.freed.rescued_release.get();
    let frac = rescued as f64 / released.max(1) as f64;
    assert!(
        frac > 0.25,
        "MGRID must rescue a large fraction of its releases (got {frac:.2})"
    );
    // Contrast: EMBAR's releases are essentially perfect.
    let e = run_cell("EMBAR", Version::Release);
    let e_frac = e.run.vm_stats.freed.rescued_release.get() as f64
        / e.run.vm_stats.freed.freed_by_release.get().max(1) as f64;
    assert!(e_frac < 0.05, "EMBAR rescued fraction {e_frac:.3}");
}

/// §4.3 BUK: the compiler releases the sequential arrays but not the
/// random one, and the random array benefits.
#[test]
fn buk_random_array_stays_resident_under_releasing() {
    let p = run_cell("BUK", Version::Prefetch);
    let r = run_cell("BUK", Version::Release);
    // Under releasing the hog's hard faults (dominated by the random
    // array) drop sharply.
    let hf = |res: &hogtame::RunOutcome| {
        let pid = res.hog.as_ref().unwrap().pid.0 as usize;
        res.run.vm_stats.proc(pid).hard_faults.get()
    };
    assert!(
        hf(&r) * 2 < hf(&p),
        "BUK-R hard faults {} vs P {}",
        hf(&r),
        hf(&p)
    );
}

/// Figure 8: soft faults from daemon invalidations collapse once releasing
/// keeps the daemon idle (BUK has the big counts: its random array is the
/// live working set the clock keeps sampling).
#[test]
fn soft_faults_collapse_with_releasing() {
    let suite = suite::run(
        &MachineConfig::origin200(),
        Some(&["BUK"]),
        SimDuration::from_secs(5),
    )
    .expect("suite runs");
    let soft = |v: Version| {
        let c = suite.cells.iter().find(|c| c.version == v).unwrap();
        c.vm.proc(c.hog.pid.0 as usize).soft_faults_daemon.get()
    };
    assert!(
        soft(Version::Prefetch) > 10_000,
        "P: {}",
        soft(Version::Prefetch)
    );
    assert!(
        soft(Version::Release) < 100,
        "R: {}",
        soft(Version::Release)
    );
}
