//! The executor's core promise, end to end: parallel suite runs are
//! bit-identical to the serial reference order, and the on-disk suite
//! cache hands back byte-identical artifacts on a hit.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use hogtame::experiments::suite::{self, SuiteHandle, SUITE_TABLES};
use hogtame::prelude::*;

/// A fresh, process-unique scratch directory (no timestamps: tests must
/// stay deterministic and runnable in parallel).
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "hogtame-parallel-exec-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn small_suite(jobs: usize) -> suite::Suite {
    suite::run_with_jobs(
        &MachineConfig::small(),
        Some(&["MATVEC"]),
        SimDuration::from_secs(1),
        jobs,
    )
    .expect("suite runs")
}

/// Every suite table renders byte-identically whether the grid ran on one
/// worker (the serial reference) or on four.
#[test]
fn parallel_suite_matches_serial_byte_for_byte() {
    let serial = small_suite(1);
    let parallel = small_suite(4);
    for (name, _) in SUITE_TABLES {
        let a = serial.table(name).expect("known table").to_csv();
        let b = parallel.table(name).expect("known table").to_csv();
        assert_eq!(a, b, "{name} diverged between 1 and 4 workers");
    }
}

/// A cache miss followed by a cache hit yields byte-identical tables, and
/// the hit never re-runs the grid (same fingerprint, `from_cache` flips).
#[test]
fn suite_cache_hit_reproduces_miss_artifacts() {
    let cache = scratch("cache");
    let machine = MachineConfig::small();
    let benches = Some(&["MATVEC"][..]);
    let sleep = SimDuration::from_secs(1);

    let miss = SuiteHandle::obtain_in(Some(&cache), &machine, benches, sleep, 2)
        .expect("first obtain runs the grid");
    assert!(!miss.from_cache(), "first obtain must be a miss");

    let hit = SuiteHandle::obtain_in(Some(&cache), &machine, benches, sleep, 2)
        .expect("second obtain loads the cache");
    assert!(hit.from_cache(), "second obtain must hit the cache");
    assert_eq!(miss.key(), hit.key(), "same grid, same fingerprint");

    for (name, _) in SUITE_TABLES {
        let a = miss.table(name).expect("known table").to_csv();
        let b = hit.table(name).expect("known table").to_csv();
        assert_eq!(a, b, "{name} differs between cache miss and hit");
    }
    std::fs::remove_dir_all(&cache).ok();
}

/// Emitted artifacts are byte-identical between a cache miss and a hit:
/// the full write-out path, not just the in-memory tables.
#[test]
fn emitted_files_identical_across_cache_states() {
    let cache = scratch("emit-cache");
    let machine = MachineConfig::small();
    let benches = Some(&["MATVEC"][..]);
    let sleep = SimDuration::from_secs(1);

    let mut dumps: Vec<Vec<(String, String)>> = Vec::new();
    for round in 0..2 {
        let h = SuiteHandle::obtain_in(Some(&cache), &machine, benches, sleep, 2).expect("obtain");
        assert_eq!(h.from_cache(), round == 1);
        let out = scratch(&format!("emit-{round}"));
        let mut files = Vec::new();
        for (name, title) in SUITE_TABLES {
            let table = h.table(name).expect("known table");
            Artifact::new(name, title)
                .in_dir(&out)
                .write_table(table)
                .expect("artifact write");
            let path = out.join(format!("{name}.csv"));
            files.push((
                name.to_string(),
                std::fs::read_to_string(&path).expect("artifact written"),
            ));
        }
        std::fs::remove_dir_all(&out).ok();
        dumps.push(files);
    }
    assert_eq!(
        dumps[0], dumps[1],
        "artifact bytes differ across cache states"
    );
    std::fs::remove_dir_all(&cache).ok();
}

/// The executor preserves request identity: outcomes land at their
/// request's index regardless of which worker ran them, so a shuffled
/// grid read back in order equals a serial run of the same grid.
#[test]
fn outcomes_indexed_by_request_not_completion_order() {
    let grid: Vec<RunRequest> = ["MATVEC", "MATVEC", "MATVEC", "MATVEC"]
        .iter()
        .zip(Version::ALL)
        .map(|(b, v)| {
            RunRequest::on(MachineConfig::small())
                .bench(*b, v)
                .interactive(SimDuration::from_secs(1), None)
        })
        .collect();
    let serial: Vec<u64> = exec::run_all_with(grid.clone(), 1)
        .into_iter()
        .map(|o| o.expect("runs").hog.unwrap().finish_time.as_nanos())
        .collect();
    let parallel: Vec<u64> = exec::run_all_with(grid, 4)
        .into_iter()
        .map(|o| o.expect("runs").hog.unwrap().finish_time.as_nanos())
        .collect();
    assert_eq!(serial, parallel);
    // The four versions genuinely differ, so an index swap cannot hide.
    let mut distinct = serial.clone();
    distinct.sort_unstable();
    distinct.dedup();
    assert!(distinct.len() >= 3, "versions too similar to detect swaps");
}
