//! Property tests at the whole-engine level: arbitrary multiprogramming
//! mixes must conserve frames, account all execution time, and terminate.

use proptest::prelude::*;

use hogtame::prelude::*;
use runtime::ops::VecStream;
use runtime::Op;
use sim_core::stats::TimeCategory;
use vm::Backing;

#[derive(Clone, Debug)]
struct ProcSpec {
    pages: u16,
    backing_swap: bool,
    ops: Vec<MiniOp>,
}

#[derive(Clone, Debug)]
enum MiniOp {
    Touch(u16, bool),
    Compute(u32),
    Sleep(u32),
}

fn proc_strategy() -> impl Strategy<Value = ProcSpec> {
    let op = prop_oneof![
        5 => (0u16..300, any::<bool>()).prop_map(|(p, w)| MiniOp::Touch(p, w)),
        3 => (1u32..20_000_000).prop_map(MiniOp::Compute),
        1 => (1u32..200_000_000).prop_map(MiniOp::Sleep),
    ];
    (16u16..300, any::<bool>(), prop::collection::vec(op, 1..120)).prop_map(
        |(pages, backing_swap, ops)| ProcSpec {
            pages,
            backing_swap,
            ops,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any mix of up to five processes terminates with frames conserved
    /// and complete time accounting.
    #[test]
    fn random_mixes_terminate_and_balance(
        procs in prop::collection::vec(proc_strategy(), 1..5)
    ) {
        let machine = MachineConfig::small();
        let total = machine.frames as u64;
        let mut engine = Engine::new(machine);
        for (k, spec) in procs.iter().enumerate() {
            let pid = engine.vm_mut().add_process(false);
            let backing = if spec.backing_swap {
                Backing::SwapPrefilled
            } else {
                Backing::ZeroFill
            };
            let region = engine
                .vm_mut()
                .map_region(pid, u64::from(spec.pages), backing, false);
            let ops: Vec<Op> = spec
                .ops
                .iter()
                .map(|op| match *op {
                    MiniOp::Touch(p, w) => Op::Touch {
                        vpn: region.start.offset(u64::from(p) % u64::from(spec.pages)),
                        write: w,
                    },
                    MiniOp::Compute(ns) => Op::Compute(SimDuration::from_nanos(u64::from(ns))),
                    MiniOp::Sleep(ns) => Op::Sleep(SimDuration::from_nanos(u64::from(ns))),
                })
                .chain([Op::End])
                .collect();
            engine.register(pid, format!("p{k}"), Box::new(VecStream::new(ops)), None, true);
        }
        let res = engine.run();

        // Termination: every process finished.
        for p in &res.procs {
            prop_assert!(p.finish_time < SimTime::MAX, "{} never finished", p.name);
        }
        // Frame conservation: all processes exited, so everything is free.
        prop_assert_eq!(res.final_free, total);
        // Accounting: a process's breakdown never exceeds its finish time,
        // and equals it when the process never slept.
        for (p, spec) in res.procs.iter().zip(&procs) {
            let breakdown = p.breakdown.total().as_nanos();
            let finish = p.finish_time.as_nanos();
            prop_assert!(
                breakdown <= finish + 1,
                "{}: breakdown {} > finish {}",
                p.name, breakdown, finish
            );
            let slept = spec.ops.iter().any(|o| matches!(o, MiniOp::Sleep(_)));
            if !slept {
                prop_assert_eq!(breakdown, finish, "{} lost time", &p.name);
            }
        }
        // Causality: the run ends no earlier than any finish time.
        let last = res.procs.iter().map(|p| p.finish_time).max().unwrap();
        prop_assert!(res.end_time >= last);
        // User time is exactly the compute the streams asked for.
        for (p, spec) in res.procs.iter().zip(&procs) {
            let want: u64 = spec
                .ops
                .iter()
                .map(|o| match o {
                    MiniOp::Compute(ns) => u64::from(*ns),
                    _ => 0,
                })
                .sum();
            prop_assert_eq!(p.breakdown.get(TimeCategory::User).as_nanos(), want);
        }
    }
}
