//! Property tests at the whole-engine level: arbitrary multiprogramming
//! mixes must conserve frames, account all execution time, and terminate —
//! plus the robustness invariants the fault-injection work leans on:
//! the tag filter never emits the page a reference still occupies, and a
//! release cancelled by re-reference never frees a resident page.

use hogtame::prelude::*;
use runtime::filter::TagFilter;
use runtime::ops::VecStream;
use runtime::Op;
use sim_core::check::{self, run_cases};
use sim_core::rng::Pcg32;
use sim_core::stats::TimeCategory;
use vm::{Backing, CostParams, Tunables, VmSys};

#[derive(Clone, Debug)]
struct ProcSpec {
    pages: u16,
    backing_swap: bool,
    ops: Vec<MiniOp>,
}

#[derive(Clone, Debug)]
enum MiniOp {
    Touch(u16, bool),
    Compute(u32),
    Sleep(u32),
}

fn random_proc(rng: &mut Pcg32) -> ProcSpec {
    let pages = check::int_in(rng, 16, 300) as u16;
    let backing_swap = check::flip(rng);
    let n = check::int_in(rng, 1, 120);
    let ops = (0..n)
        .map(|_| match rng.next_below(9) {
            // Weights mirror the old strategy: touch 5, compute 3, sleep 1.
            0..=4 => MiniOp::Touch(check::int_in(rng, 0, 300) as u16, check::flip(rng)),
            5..=7 => MiniOp::Compute(check::int_in(rng, 1, 20_000_000) as u32),
            _ => MiniOp::Sleep(check::int_in(rng, 1, 200_000_000) as u32),
        })
        .collect();
    ProcSpec {
        pages,
        backing_swap,
        ops,
    }
}

/// Any mix of up to five processes terminates with frames conserved
/// and complete time accounting.
#[test]
fn random_mixes_terminate_and_balance() {
    run_cases(0xE9914E, 48, |rng| {
        let nprocs = check::int_in(rng, 1, 5);
        let procs: Vec<ProcSpec> = (0..nprocs).map(|_| random_proc(rng)).collect();
        let machine = MachineConfig::small();
        let total = machine.frames as u64;
        let mut engine = Engine::new(machine);
        for (k, spec) in procs.iter().enumerate() {
            let pid = engine.vm_mut().add_process(false);
            let backing = if spec.backing_swap {
                Backing::SwapPrefilled
            } else {
                Backing::ZeroFill
            };
            let region = engine
                .vm_mut()
                .map_region(pid, u64::from(spec.pages), backing, false);
            let ops: Vec<Op> = spec
                .ops
                .iter()
                .map(|op| match *op {
                    MiniOp::Touch(p, w) => Op::Touch {
                        vpn: region.start.offset(u64::from(p) % u64::from(spec.pages)),
                        write: w,
                    },
                    MiniOp::Compute(ns) => Op::Compute(SimDuration::from_nanos(u64::from(ns))),
                    MiniOp::Sleep(ns) => Op::Sleep(SimDuration::from_nanos(u64::from(ns))),
                })
                .chain([Op::End])
                .collect();
            engine.register(
                pid,
                format!("p{k}"),
                Box::new(VecStream::new(ops)),
                None,
                true,
            );
        }
        let res = engine.run();

        // Termination: every process finished.
        for p in &res.procs {
            assert!(p.finish_time < SimTime::MAX, "{} never finished", p.name);
        }
        // Frame conservation: all processes exited, so everything is free.
        assert_eq!(res.final_free, total);
        // Accounting: a process's breakdown never exceeds its finish time,
        // and equals it when the process never slept.
        for (p, spec) in res.procs.iter().zip(&procs) {
            let breakdown = p.breakdown.total().as_nanos();
            let finish = p.finish_time.as_nanos();
            assert!(
                breakdown <= finish + 1,
                "{}: breakdown {} > finish {}",
                p.name,
                breakdown,
                finish
            );
            let slept = spec.ops.iter().any(|o| matches!(o, MiniOp::Sleep(_)));
            if !slept {
                assert_eq!(breakdown, finish, "{} lost time", &p.name);
            }
        }
        // Causality: the run ends no earlier than any finish time.
        let last = res.procs.iter().map(|p| p.finish_time).max().unwrap();
        assert!(res.end_time >= last);
        // User time is exactly the compute the streams asked for.
        for (p, spec) in res.procs.iter().zip(&procs) {
            let want: u64 = spec
                .ops
                .iter()
                .map(|o| match o {
                    MiniOp::Compute(ns) => u64::from(*ns),
                    _ => 0,
                })
                .sum();
            assert_eq!(p.breakdown.get(TimeCategory::User).as_nanos(), want);
        }
    });
}

/// Robustness invariant: crash-and-restart plans are deterministic. A run
/// whose fault plan kills and supervises arbitrary components — random
/// crash instants, permanence, failed-restart counts, and supervisor
/// tuning — is a pure function of the plan: repeating it is bit-identical
/// in metrics and fault log alike.
#[test]
fn crash_plans_are_bit_identical_across_repeats() {
    run_cases(0xC9A54, 8, |rng| {
        let mut spec = |crashed: &mut bool| -> Option<CrashSpec> {
            check::chance(rng, 0.6).then(|| {
                *crashed = true;
                let at = SimTime::from_nanos(check::int_in(rng, 0, 5_000_000) * 1_000);
                let s = if check::chance(rng, 0.25) {
                    CrashSpec::permanent(at)
                } else {
                    CrashSpec::at(at)
                };
                s.with_failed_restarts(check::int_in(rng, 0, 3) as u32)
            })
        };
        let mut any = false;
        let crashes = CrashFaults {
            releaser: spec(&mut any),
            prefetch: spec(&mut any),
            hint_layer: spec(&mut any),
            supervisor: SupervisorConfig {
                heartbeat_period: SimDuration::from_millis(check::int_in(rng, 1, 10)),
                miss_threshold: check::int_in(rng, 1, 3) as u32,
                backoff_initial: SimDuration::from_millis(check::int_in(rng, 5, 20)),
                backoff_cap: SimDuration::from_millis(check::int_in(rng, 100, 500)),
                max_restarts: check::int_in(rng, 3, 6) as u32,
            },
        };
        let plan = FaultPlan {
            seed: rng.next_u64(),
            crashes,
            ..FaultPlan::default()
        };
        let run = || {
            let res = RunRequest::on(MachineConfig::small())
                .bench("MATVEC", Version::Release)
                .fault_plan(plan)
                .run()
                .expect("MATVEC is registered");
            let hog = res.hog.unwrap();
            (
                hog.finish_time.as_nanos(),
                hog.breakdown.total().as_nanos(),
                res.run.swap_reads,
                res.run.vm_stats.pagingd.pages_stolen.get(),
                res.run.vm_stats.releaser.pages_released.get(),
                res.run.fault_log.total(),
                res.run.fault_log.summary(),
            )
        };
        let a = run();
        assert_eq!(a, run(), "crash plan {plan:?} diverged between repeats");
        if any {
            assert!(
                a.6.contains("component_crashed"),
                "armed crashes must land in the fault log: {}",
                a.6
            );
        }
    });
}

/// The paper's safety argument, end to end: when the releaser daemon dies
/// permanently — whatever the crash instant — the run still completes,
/// the supervisor abandons the daemon after its restart budget, and the
/// always-alive paging daemon reclaims in its stead, converging to the
/// no-hints baseline's stealing activity within the 5% envelope
/// established by `fault_matrix`. Killing the hint layer as well removes
/// the remaining (prefetch) benefit and converges wall-clock to the
/// no-hints baseline.
#[test]
fn permanently_dead_releaser_degrades_to_stock_reclamation() {
    let baseline = RunRequest::on(MachineConfig::origin200())
        .bench("MATVEC", Version::Original)
        .run()
        .expect("MATVEC is registered");
    let stolen_o = baseline.run.vm_stats.pagingd.pages_stolen.get() as f64;
    let finish_o = baseline.hog.unwrap().finish_time.as_secs_f64();

    run_cases(0xDEAD9E1EA5E9, 4, |rng| {
        let at = SimTime::from_nanos(check::int_in(rng, 0, 2_000_000) * 1_000);
        let kill_hints = check::flip(rng);
        let plan = FaultPlan {
            seed: rng.next_u64(),
            crashes: CrashFaults {
                releaser: Some(CrashSpec::permanent(at)),
                hint_layer: kill_hints.then_some(CrashSpec::permanent(at)),
                ..CrashFaults::default()
            },
            ..FaultPlan::default()
        };
        let res = RunRequest::on(MachineConfig::origin200())
            .bench("MATVEC", Version::Release)
            .fault_plan(plan)
            .run()
            .expect("MATVEC is registered");
        let hog = res.hog.unwrap();
        assert!(
            hog.finish_time < SimTime::MAX,
            "the run must complete without its releaser"
        );
        assert!(
            res.run.fault_log.count("component_abandoned") >= 1,
            "a permanent crash must exhaust the restart budget: {}",
            res.run.fault_log.summary()
        );
        let stolen = res.run.vm_stats.pagingd.pages_stolen.get() as f64;
        assert!(
            (stolen - stolen_o).abs() / stolen_o <= 0.05,
            "daemon backstop must reclaim like stock IRIX: stole {stolen}, baseline {stolen_o}"
        );
        if kill_hints {
            let finish = hog.finish_time.as_secs_f64();
            assert!(
                (finish - finish_o).abs() / finish_o <= 0.05,
                "no hints at all must converge to the no-hints baseline: {finish:.2}s vs {finish_o:.2}s"
            );
        }
    });
}

/// Robustness invariant (a): per tag, the one-behind filter never emits
/// the same page twice in a row — the page a reference still occupies is
/// never released out from under it, no matter the hint sequence (even
/// an adversarial one produced by fault injection).
#[test]
fn tag_filter_never_repeats_a_page_per_tag() {
    run_cases(0x7A9FE4, 128, |rng| {
        let mut filter = TagFilter::new();
        let mut last_emitted: std::collections::HashMap<u32, u64> = Default::default();
        let n = check::int_in(rng, 1, 400);
        for _ in 0..n {
            let tag = rng.next_below(6);
            // Small page universe maximizes repeats and ping-pongs.
            let page = check::int_in(rng, 0, 8);
            if let Some(out) = filter.observe(tag, vm::Vpn(page)) {
                if let Some(&prev) = last_emitted.get(&tag) {
                    assert_ne!(out.0, prev, "tag {tag} emitted page {prev} twice in a row");
                }
                assert_ne!(out.0, page, "emitted the page currently being hinted");
                last_emitted.insert(tag, out.0);
            }
            // Occasionally retire the tag (nest exit) — emission history
            // resets with it, so the invariant is per nest lifetime.
            if check::chance(rng, 0.02) {
                filter.retire_tag(tag);
                last_emitted.remove(&tag);
            }
        }
    });
}

/// Robustness invariant (b): a release cancelled by re-reference never
/// frees a resident page. Whatever interleaving of release requests,
/// cancelling touches, and releaser activations occurs, a page whose
/// release was cancelled (touched after the request) is still resident
/// after the releaser runs — and the freed-page books stay balanced.
#[test]
fn cancelled_release_never_frees_resident_page() {
    run_cases(0xCA9CE1F4EE, 96, |rng| {
        let total = 128usize;
        let npages = 48u64;
        let mut vm = VmSys::new(
            total,
            Tunables::for_memory(total as u64),
            CostParams::default(),
            disk::SwapConfig::test_array(),
        );
        let pid = vm.add_process(true);
        let region = vm.map_region(pid, npages, Backing::SwapPrefilled, true);
        let mut now = SimTime::from_nanos(1);
        for i in 0..npages {
            now = vm.touch(now, pid, region.start.offset(i), false).done_at;
        }
        // Pages whose most recent release request has been cancelled by a
        // later touch (and not re-requested since).
        let mut cancelled = std::collections::HashSet::new();
        let steps = check::int_in(rng, 1, 120);
        for _ in 0..steps {
            let page = check::int_in(rng, 0, npages);
            let vpn = region.start.offset(page);
            match rng.next_below(4) {
                0 => {
                    vm.release(now, pid, &[vpn]);
                    cancelled.remove(&page);
                }
                1 => {
                    let res = vm.touch(now, pid, vpn, check::flip(rng));
                    now = res.done_at;
                    if vm.release_pending_for_test(pid, vpn)
                        || res.kind == vm::TouchKind::SoftFaultRelease
                    {
                        // Touch raced an outstanding request: cancelled.
                    }
                    if res.kind == vm::TouchKind::SoftFaultRelease {
                        cancelled.insert(page);
                    }
                }
                2 => {
                    vm.service_releaser(now);
                }
                _ => now += SimDuration::from_micros(check::int_in(rng, 1, 500)),
            }
            // The invariant, checked continuously: cancelled pages stay
            // resident across releaser activations.
            for &p in &cancelled {
                assert!(
                    vm.page_resident_for_test(pid, region.start.offset(p)),
                    "cancelled release freed resident page {p}"
                );
            }
            assert_eq!(vm.rss(pid) + vm.free_pages(), total as u64);
        }
        // Final drain: even after the releaser fully catches up, no
        // cancelled page has been freed.
        now += SimDuration::from_millis(10);
        vm.service_releaser(now);
        for &p in &cancelled {
            assert!(
                vm.page_resident_for_test(pid, region.start.offset(p)),
                "cancelled release freed page {p} on final drain"
            );
        }
    });
}
