//! Property tests for the Eq. 2 release-priority encoding.
//!
//! `priority(x) = Σ_{i ∈ temporal(x)} 2^depth(i)` is exactly positional
//! binary over loop depths. Three consequences, each asserted over many
//! deterministic pseudo-random cases:
//!
//! 1. relabeling a whole loop nest deeper (adding `k` to every depth)
//!    multiplies every priority by `2^k` and therefore never reorders
//!    references relative to each other;
//! 2. temporal reuse in a deeper loop strictly dominates *any* combination
//!    of shallower reuses (`2^d > 2^d − 1`);
//! 3. priorities round-trip through the buffered-release queues: pages
//!    drain lowest-priority-first and the buffering structure stays
//!    coherent throughout.

use compiler::ir::LoopId;
use compiler::priority::release_priority;
use runtime::policy::ReleaseBuffers;
use sim_core::check::{chance, int_in, run_cases, vec_of_ints};
use vm::Vpn;

fn depths_to_loops(depths: &[u64]) -> Vec<LoopId> {
    depths.iter().map(|&d| LoopId(d as usize)).collect()
}

#[test]
fn relabeling_a_nest_preserves_priority_order() {
    run_cases(0x5E17, 200, |rng| {
        // Depths stay below 16 and shifts below 8, so no term can reach
        // the saturation clamp and the algebra is exact.
        let a = depths_to_loops(&vec_of_ints(rng, 0, 6, 0, 16));
        let b = depths_to_loops(&vec_of_ints(rng, 0, 6, 0, 16));
        let k = int_in(rng, 0, 8) as usize;
        let shift = |ls: &[LoopId]| -> Vec<LoopId> { ls.iter().map(|l| LoopId(l.0 + k)).collect() };
        let before = release_priority(&a).cmp(&release_priority(&b));
        let after = release_priority(&shift(&a)).cmp(&release_priority(&shift(&b)));
        assert_eq!(before, after, "relabeling by +{k} reordered {a:?} vs {b:?}");
    });
}

#[test]
fn deeper_temporal_reuse_strictly_dominates() {
    run_cases(0xD0E, 200, |rng| {
        let d = int_in(rng, 1, 24) as usize;
        // Any set of *distinct* shallower reuses sums to at most 2^d − 1.
        let shallow: Vec<LoopId> = (0..d).filter(|_| chance(rng, 0.5)).map(LoopId).collect();
        assert!(
            release_priority(&[LoopId(d)]) > release_priority(&shallow),
            "depth-{d} reuse must outrank all of {shallow:?}"
        );
    });
}

#[test]
fn priorities_round_trip_through_the_release_queues() {
    run_cases(0xB0FF, 100, |rng| {
        let mut buffers = ReleaseBuffers::new();
        let n_tags = int_in(rng, 1, 8);
        let mut expected = 0usize;
        for tag in 0..n_tags {
            // The tag's priority is its Eq. 2 value for a random reuse set
            // (plus one: priority-0 releases are issued directly, never
            // buffered).
            let reuse = depths_to_loops(&vec_of_ints(rng, 0, 4, 0, 5));
            let prio = release_priority(&reuse) + 1;
            for seq in 0..int_in(rng, 1, 10) {
                // Encode the priority into the page number so the drain
                // order can be decoded without peeking at internals.
                let vpn = Vpn(u64::from(prio) * 1_000_000 + tag * 1000 + seq);
                buffers.buffer(tag as u32, prio, vpn);
                if chance(rng, 0.2) {
                    buffers.buffer(tag as u32, prio, vpn); // coalesces
                }
                expected += 1;
            }
            buffers.check_coherent().expect("coherent after buffering");
        }
        assert_eq!(buffers.buffered(), expected, "coalescing miscounted");

        let mut drained = Vec::new();
        loop {
            let batch = buffers.drain_lowest(int_in(rng, 1, 5) as usize);
            buffers.check_coherent().expect("coherent after draining");
            if batch.is_empty() {
                break;
            }
            drained.extend_from_slice(&batch);
        }
        assert_eq!(drained.len(), expected, "drain lost or invented pages");
        let prios: Vec<u64> = drained.iter().map(|v| v.0 / 1_000_000).collect();
        assert!(
            prios.windows(2).all(|w| w[0] <= w[1]),
            "drain must go lowest-priority-first: {prios:?}"
        );
    });
}
