//! The crash-tolerance promise of the journaled executor, end to end: a
//! suite grid killed mid-flight resumes from its completion journal and
//! emits artifacts byte-identical to an uninterrupted pass.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use hogtame::experiments::suite::{self, SUITE_TABLES};
use hogtame::prelude::*;

/// A fresh, process-unique scratch directory (no timestamps: tests must
/// stay deterministic and runnable in parallel).
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "hogtame-resume-exec-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

const SLEEP: SimDuration = SimDuration::from_secs(1);

/// Two benchmarks: a 9-request grid, so a 4-worker pool stopped after two
/// completions provably leaves work unclaimed (at most workers + budget
/// requests are ever claimed before the stop trips).
const BENCHES: Option<&[&str]> = Some(&["MATVEC", "EMBAR"]);

fn small_grid() -> Vec<RunRequest> {
    suite::requests(&MachineConfig::small(), BENCHES, SLEEP)
}

fn suite_csvs(suite: &suite::Suite) -> Vec<(&'static str, String)> {
    SUITE_TABLES
        .iter()
        .map(|(name, _)| (*name, suite.table(name).expect("known table").to_csv()))
        .collect()
}

/// Kill a 4-worker suite grid after two completions, resume it from the
/// journal, and pin every suite CSV byte-identical to an uninterrupted
/// run. The resumed pass must replay the journaled completions rather
/// than redo them.
#[test]
fn killed_suite_grid_resumes_byte_identical() {
    let dir = scratch("journal");
    let journal = Journal::at(&dir).expect("journal opens");

    // "Kill" the process mid-grid: workers stop claiming after two
    // completions. Only those completions reach the journal.
    let killed = exec::run_all_until(small_grid(), 4, &journal, 2);
    assert!(killed >= 2, "the pool completed work before the kill");
    let survived = journal.len();
    assert!(
        (2..small_grid().len()).contains(&survived),
        "the kill must land mid-grid, journaled {survived} of {}",
        small_grid().len()
    );

    // Resume: the full suite pass, replaying the journal.
    let resumed = suite::run_journaled(&MachineConfig::small(), BENCHES, SLEEP, 4, &journal)
        .expect("resumed suite runs");
    assert_eq!(
        journal.len(),
        small_grid().len(),
        "resume journals every remaining run"
    );

    // The reference: an uninterrupted, unjournaled pass.
    let uninterrupted = suite::run_with_jobs(&MachineConfig::small(), BENCHES, SLEEP, 4)
        .expect("uninterrupted suite runs");

    for ((name, a), (_, b)) in suite_csvs(&resumed).iter().zip(&suite_csvs(&uninterrupted)) {
        assert_eq!(a, b, "{name} differs between resumed and uninterrupted");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A fully journaled grid replays with zero re-simulation and the same
/// bytes: running the suite twice against the same journal is the warm
/// path a resumed campaign takes for its completed prefix.
#[test]
fn warm_journal_replays_the_whole_suite() {
    let dir = scratch("warm");
    let journal = Journal::at(&dir).expect("journal opens");
    let m = MachineConfig::small();

    let cold = suite::run_journaled(&m, BENCHES, SLEEP, 2, &journal).expect("cold pass");
    let recorded = journal.len();
    assert_eq!(recorded, small_grid().len(), "every run is journaled");

    let warm = suite::run_journaled(&m, BENCHES, SLEEP, 2, &journal).expect("warm pass");
    assert_eq!(journal.len(), recorded, "a warm pass writes nothing new");
    assert_eq!(
        suite_csvs(&cold),
        suite_csvs(&warm),
        "replayed suite must be byte-identical"
    );
    std::fs::remove_dir_all(&dir).ok();
}
