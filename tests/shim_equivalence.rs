//! Deprecation shims must stay *exactly* equivalent to their replacements.
//!
//! The workspace keeps `Scenario` (superseded by `RunRequest`) and
//! `TraceRing` (superseded by `sim_core::obs::Recorder`) compiling for
//! external callers. A shim that drifts from its replacement is worse than
//! no shim, so these tests pin byte-identical behaviour, not mere
//! similarity.

#![allow(deprecated)]

mod common;

use hogtame::prelude::*;
use sim_core::obs::{EventKind, Recorder};
use sim_core::trace::TraceRing;

#[test]
fn scenario_shim_runs_the_same_simulation_as_run_request() {
    let spec = workloads::benchmark("MATVEC").expect("MATVEC is registered");
    let mut s = Scenario::new(MachineConfig::small());
    s.bench(spec, Version::Buffered);
    s.interactive(SimDuration::from_secs(5), None);
    s.kernel_trace();
    let shim: ScenarioResult = s.run();

    let direct = common::small_request("MATVEC", Version::Buffered)
        .kernel_trace()
        .run()
        .expect("MATVEC is registered");

    assert_eq!(
        common::outcome_digest(&shim),
        common::outcome_digest(&direct),
        "Scenario must be a pure veneer over RunRequest"
    );
    // The derived kernel trace is byte-identical record for record
    // (`TraceRecord` is `Eq`; any drift in time, tag or message fails).
    assert_eq!(shim.run.kernel_trace, direct.run.kernel_trace);
    assert!(
        !shim.run.kernel_trace.is_empty(),
        "kernel_trace() must actually record"
    );
}

#[test]
fn scenario_shim_forwards_fault_plans() {
    let plan = FaultPlan {
        seed: 3,
        hints: HintFaults::poisoned(0.5),
        ..FaultPlan::default()
    };
    let spec = workloads::benchmark("MATVEC").expect("MATVEC is registered");
    let mut s = Scenario::new(MachineConfig::small());
    s.bench(spec, Version::Release);
    s.fault_plan(plan);
    let shim = s.run();
    let direct = RunRequest::on(MachineConfig::small())
        .bench("MATVEC", Version::Release)
        .fault_plan(plan)
        .run()
        .expect("MATVEC is registered");
    assert_eq!(
        shim.run.fault_log.summary(),
        direct.run.fault_log.summary(),
        "the shim must thread the fault plan through unchanged"
    );
    assert_eq!(
        common::outcome_digest(&shim),
        common::outcome_digest(&direct)
    );
}

#[test]
fn trace_ring_shim_matches_recorder_ring_semantics() {
    // Same capacity, same over-full emission sequence: the legacy string
    // ring and the structured recorder must agree on what a bounded ring
    // *is* — retained window, eviction order, dropped accounting, and
    // enable gating.
    const CAP: usize = 4;
    const EMITS: u64 = 11;

    let mut ring = TraceRing::new(CAP);
    let mut rec = Recorder::new(CAP);
    ring.set_enabled(true);
    rec.set_enabled(true);
    for i in 0..EMITS {
        let at = SimTime::from_nanos(i);
        ring.emit(at, "vhand", || format!("scan {i}"));
        rec.emit(
            at,
            EventKind::PagingdScan {
                scanned: i,
                free: 0,
            },
        );
    }

    let ring_times: Vec<u64> = ring.records().map(|r| r.time.as_nanos()).collect();
    let rec_times: Vec<u64> = rec.events().map(|e| e.at.as_nanos()).collect();
    assert_eq!(ring_times, rec_times, "retained windows must line up");
    assert_eq!(ring_times.len(), CAP);
    assert_eq!(
        ring.dropped(),
        rec.dropped(),
        "both sides must count evictions identically"
    );
    assert_eq!(ring.dropped(), EMITS - CAP as u64);

    // Disabled emits are free on both sides: not recorded, not counted
    // as dropped, and (for the ring) the message closure never runs.
    let mut ring = TraceRing::new(CAP);
    let mut rec = Recorder::new(CAP);
    ring.emit(SimTime::ZERO, "x", || unreachable!("lazy when disabled"));
    rec.emit(
        SimTime::ZERO,
        EventKind::PagingdScan {
            scanned: 0,
            free: 0,
        },
    );
    assert_eq!(ring.records().count(), 0);
    assert_eq!(rec.events().count(), 0);
    assert_eq!((ring.dropped(), rec.dropped()), (0, 0));
}
