//! The span layer's load-bearing promises, end to end:
//!
//! 1. **Exactness** — every closed request's per-state durations sum to
//!    its measured latency to the simulated nanosecond; the blame table
//!    reconciles to the summaries; the p999 exemplar *is* the fleet
//!    digest's p999 sweep (same multiset, same nearest-rank convention).
//! 2. **Determinism** — the rendered blame table, span summary, and
//!    exemplar timelines are byte-identical whether a grid runs
//!    serially, on a multi-worker pool, or resumes from a
//!    kill-then-resume journal pass.
//! 3. **Opt-in** — a run without `.observe()` carries no span report
//!    and no span events at all.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

use hogtame::prelude::*;

/// A fresh, process-unique scratch directory (no timestamps: tests must
/// stay deterministic and runnable in parallel).
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "hogtame-spans-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The observed surge storm every exactness test interrogates — run
/// once per test binary, shared read-only.
fn storm() -> &'static RunOutcome {
    static OUT: OnceLock<RunOutcome> = OnceLock::new();
    OUT.get_or_init(|| {
        RunRequest::on(MachineConfig::small())
            .fleet(FleetSpec::storm_demo(true))
            .observe()
            .run()
            .expect("storm runs")
    })
}

/// A mixed grid for the determinism passes: the observed storm, one
/// observed classic run, and a plain run that must stay span-free.
fn grid() -> Vec<RunRequest> {
    let m = MachineConfig::small;
    vec![
        RunRequest::on(m())
            .fleet(FleetSpec::storm_demo(true))
            .observe(),
        RunRequest::on(m())
            .bench("MATVEC", Version::Release)
            .interactive(SimDuration::from_secs(1), None)
            .observe(),
        RunRequest::on(m()).bench("MATVEC", Version::Prefetch),
    ]
}

/// The bytes we pin: the full human rendering of each outcome's span
/// report (summary + blame table + every exemplar timeline), or the
/// empty string for span-free runs.
fn span_bytes(outcomes: &[Result<RunOutcome, RunError>]) -> Vec<String> {
    outcomes
        .iter()
        .map(|r| {
            let out = r.as_ref().expect("grid request succeeds");
            match out.run.spans.as_ref() {
                None => String::new(),
                Some(sp) => {
                    let mut s = span_summary(sp);
                    s.push_str(&blame_table(sp).render());
                    for (i, ex) in sp.exemplars.iter().enumerate() {
                        s.push_str(&exemplar_timeline(&format!("exemplar {i}"), ex));
                    }
                    s
                }
            }
        })
        .collect()
}

#[test]
fn every_request_tiles_exactly_and_blame_reconciles() {
    let out = storm();
    let spans = out.run.spans.as_ref().expect("observed run carries spans");
    assert!(spans.requests() > 100, "a storm tracks many requests");
    // Property: per-request state durations sum exactly to the measured
    // latency — no gaps, no overlaps, for every request in the run.
    for s in &spans.summaries {
        assert_eq!(
            s.total(),
            s.latency,
            "request {} (pid {}) must tile its latency exactly",
            s.req,
            s.pid
        );
    }
    // The blame table is the same time re-bucketed: its cells sum to
    // the total latency, per state and overall.
    let blame_total = spans
        .blame_rows()
        .map(|(_, d)| d)
        .fold(SimDuration::ZERO, |a, b| a + b);
    assert_eq!(blame_total, spans.total_latency());
    let mut per_state = [SimDuration::ZERO; SpanState::COUNT];
    for s in &spans.summaries {
        for (i, d) in s.by_state.iter().enumerate() {
            per_state[i] += *d;
        }
    }
    assert_eq!(per_state, spans.total_by_state());
    // Nothing went missing: every request closed or was accounted for.
    assert_eq!(spans.unfinished, 0, "the storm drains every request");
}

#[test]
fn exemplars_align_with_the_fleet_digest() {
    let out = storm();
    let spans = out.run.spans.as_ref().expect("spans");
    let fleet = out.run.fleet.as_ref().expect("fleet stats");
    // The exemplar population is exactly the digest population.
    assert_eq!(spans.sweeps_closed, fleet.overall.count);
    // Same multiset + same nearest-rank convention ⇒ the p999 exemplar's
    // latency equals the fleet digest's p999 exactly, not approximately.
    let p999 = spans.p999_exemplar().expect("storm has sweeps");
    assert_eq!(p999.summary.latency, fleet.overall.p999);
    let slow = spans.slowest().expect("storm has sweeps");
    assert_eq!(slow.summary.latency, fleet.overall.max);
    // Exemplars carry usable critical paths: chronological, merged, and
    // the dominant state of the p999 sweep is identified.
    let path = p999.critical_path();
    assert!(!path.is_empty());
    for w in path.windows(2) {
        assert!(w[0].start + w[0].dur <= w[1].start, "chronological");
        assert_ne!(w[0].state, w[1].state, "consecutive states merged");
    }
    assert_eq!(
        p999.summary.by_state[p999.summary.dominant_state().idx()],
        SpanState::ALL
            .iter()
            .map(|s| p999.summary.by_state[s.idx()])
            .max()
            .unwrap()
    );
    // Shed requests never enter the sweep population.
    let shed_sweeps = spans
        .summaries
        .iter()
        .filter(|s| s.shed && matches!(s.kind, SpanKind::Sweep))
        .count() as u64;
    let clean_sweeps = spans
        .summaries
        .iter()
        .filter(|s| !s.shed && matches!(s.kind, SpanKind::Sweep))
        .count() as u64;
    assert_eq!(clean_sweeps, spans.sweeps_closed);
    let _ = shed_sweeps; // (may be zero for this seed; counted for clarity)
}

#[test]
fn span_renderings_are_byte_identical_across_worker_counts() {
    let serial = span_bytes(&exec::run_all_journaled(grid(), 1, None));
    assert!(!serial[0].is_empty(), "the storm renders a span report");
    assert!(!serial[1].is_empty(), "the observed classic run too");
    assert!(serial[2].is_empty(), "the plain run carries no spans");
    for jobs in [2, 4] {
        let pooled = span_bytes(&exec::run_all_journaled(grid(), jobs, None));
        assert_eq!(
            serial, pooled,
            "span renderings must not depend on jobs={jobs}"
        );
    }
}

#[test]
fn killed_span_grid_resumes_byte_identical() {
    let straight = span_bytes(&exec::run_all_journaled(grid(), 1, None));
    let dir = scratch("journal");
    let journal = Journal::at(&dir).expect("journal opens");
    let killed = exec::run_all_until(grid(), 2, &journal, 2);
    assert!(killed >= 2, "the pool completed work before the kill");
    let resumed = exec::run_all_journaled(grid(), 2, Some(&journal));
    assert_eq!(
        straight,
        span_bytes(&resumed),
        "kill-then-resume must reproduce the span renderings"
    );
}

#[test]
fn span_events_reach_the_chrome_trace() {
    let out = storm();
    let ev = &out.run.events;
    let spans = out.run.spans.as_ref().expect("spans");
    // One span_request event per closed request (exact counts survive
    // ring eviction), plus at least one state interval each.
    assert_eq!(ev.count("span_request"), spans.requests() as u64);
    assert!(ev.count("span_state") >= spans.requests() as u64);
    let names: Vec<String> = out.run.procs.iter().map(|p| p.name.clone()).collect();
    let chrome = ev.to_chrome_trace(&names);
    assert!(
        chrome.contains("\"cat\":\"span\""),
        "span duration events are exported"
    );
    assert!(chrome.contains("\"ph\":\"X\""), "as Perfetto X events");
}
